package resilience

import (
	"context"
	"errors"
	"strconv"
	"sync/atomic"
	"time"

	"quepa/internal/telemetry"
)

// RetryPolicy configures a Retrier. The zero value selects the defaults; a
// MaxAttempts of 1 disables retries entirely.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, the first one included.
	MaxAttempts int
	// BaseBackoff is the nominal sleep before the first retry; each further
	// retry doubles it, capped at MaxBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Jitter is the fraction of each backoff that is randomized: a backoff b
	// becomes b*(1-Jitter) + u*b*Jitter with u drawn from the seeded stream.
	// 0 keeps backoffs exact; negative values select the default.
	Jitter float64
	// Seed drives the jitter stream. Two Retriers with the same policy
	// produce the same backoff sequence — chaos tests rely on this.
	Seed uint64
	// AttemptTimeout bounds one attempt (the wire client maps it onto the
	// connection deadline). 0 disables per-attempt deadlines.
	AttemptTimeout time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultBaseBackoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultMaxBackoff
	}
	if p.Jitter < 0 {
		p.Jitter = DefaultJitter
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// DefaultRetryPolicy is the policy wire.Dial applies when none is given.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Jitter: DefaultJitter, Seed: 1, AttemptTimeout: 2 * time.Second}.withDefaults()
}

// Retrier executes operations under a RetryPolicy. It is safe for concurrent
// use; the jitter stream advances atomically, so a single-goroutine caller
// observes a fully deterministic backoff sequence.
type Retrier struct {
	policy RetryPolicy
	draws  atomic.Uint64
	sleep  func(time.Duration) // injectable for tests; nil means time.Sleep
}

// NewRetrier builds a Retrier, filling policy defaults.
func NewRetrier(p RetryPolicy) *Retrier {
	return &Retrier{policy: p.withDefaults()}
}

// Policy returns the retrier's (default-filled) policy.
func (r *Retrier) Policy() RetryPolicy { return r.policy }

// SetSleep overrides the sleeper used between attempts (tests inject a
// recorder). A nil fn restores time.Sleep.
func (r *Retrier) SetSleep(fn func(time.Duration)) { r.sleep = fn }

// Sleep waits for d through the configured sleeper, for callers (the wire
// client) that inline their own retry loop to stay allocation-free.
func (r *Retrier) Sleep(d time.Duration) {
	if r.sleep != nil {
		r.sleep(d)
		return
	}
	time.Sleep(d)
}

// Backoff returns the sleep before retry `attempt` (1 = the first retry):
// min(Base<<(attempt-1), Max) with the policy's share of seeded jitter. Each
// call advances the jitter stream.
func (r *Retrier) Backoff(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	b := r.policy.BaseBackoff
	// Shift with an overflow guard: past ~32 doublings we are long over cap.
	if attempt-1 < 32 {
		b <<= uint(attempt - 1)
	} else {
		b = r.policy.MaxBackoff
	}
	if b > r.policy.MaxBackoff || b <= 0 {
		b = r.policy.MaxBackoff
	}
	if r.policy.Jitter == 0 {
		return b
	}
	u := unit(r.policy.Seed, r.draws.Add(1))
	return time.Duration(float64(b) * (1 - r.policy.Jitter + u*r.policy.Jitter))
}

// Do runs op, retrying retryable errors up to MaxAttempts with Backoff
// sleeps in between. A first-attempt success does not allocate. op receives
// the caller's context unchanged; per-attempt deadlines are the operation's
// concern (the wire client maps them to connection deadlines) because
// wrapping the context would allocate on every call.
//
// When the caller is traced, every attempt beyond the first runs inside a
// child span tagged attempt=n and the caller's trace is marked FlagRetry, so
// retry storms are visible in the kept traces.
func (r *Retrier) Do(ctx context.Context, op func(context.Context) error) error {
	var err error
	for attempt := 1; ; attempt++ {
		if attempt == 1 || telemetry.SpanFromContext(ctx) == nil {
			err = op(ctx)
		} else {
			actx, asp := telemetry.StartSpan(ctx, "retry.attempt")
			asp.SetAttr("attempt", strconv.Itoa(attempt))
			err = op(actx)
			if err != nil {
				asp.SetAttr("error", err.Error())
			}
			asp.End()
		}
		if err == nil || attempt >= r.policy.MaxAttempts || !Retryable(err) {
			return err
		}
		if ctx.Err() != nil {
			return err
		}
		telemetry.SpanFromContext(ctx).Mark(telemetry.FlagRetry)
		d := r.Backoff(attempt)
		if r.sleep != nil {
			r.sleep(d)
		} else {
			time.Sleep(d)
		}
	}
}

// Retryable reports whether an error is worth another attempt. Context
// cancellation means the caller gave up; an open breaker will keep rejecting
// until its cooldown, far longer than any backoff here.
func Retryable(err error) bool {
	return err != nil &&
		!errors.Is(err, context.Canceled) &&
		!errors.Is(err, ErrOpen)
}

// unit maps (seed, n) to a uniform float64 in [0, 1) via splitmix64 — a
// stateless hash, so jitter is reproducible from the seed alone.
func unit(seed, n uint64) float64 {
	x := seed + n*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
