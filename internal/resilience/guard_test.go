package resilience

import (
	"context"
	"errors"
	"testing"
	"time"

	"quepa/internal/core"
)

// stubStore is a minimal core.Store whose failure mode tests flip at will.
type stubStore struct {
	name string
	fail bool
	obj  core.Object
}

func newStubStore(name string) *stubStore {
	return &stubStore{name: name, obj: core.NewObject(core.NewGlobalKey(name, "c", "k"), map[string]string{"v": "1"})}
}

func (s *stubStore) Name() string          { return s.name }
func (s *stubStore) Kind() core.StoreKind  { return core.KindKeyValue }
func (s *stubStore) Collections() []string { return []string{"c"} }

func (s *stubStore) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if s.fail {
		return core.Object{}, errBoom
	}
	return s.obj, nil
}

func (s *stubStore) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if s.fail {
		return nil, errBoom
	}
	return []core.Object{s.obj}, nil
}

func (s *stubStore) Query(ctx context.Context, q string) ([]core.Object, error) {
	if s.fail {
		return nil, errBoom
	}
	return []core.Object{s.obj}, nil
}

func (s *stubStore) KeyField(context.Context, string) (string, error) { return "id", nil }

// TestGuardBreakerTrips: a guarded store rejects fast once K failures
// accumulated, and the rejection carries both the store name and ErrOpen.
func TestGuardBreakerTrips(t *testing.T) {
	clock := &fakeClock{t: time.Unix(0, 0)}
	st := newStubStore("remote")
	g := Guard(st, NewBreaker("remote", BreakerConfig{FailureThreshold: 2, Cooldown: time.Minute, Now: clock.Now}))
	ctx := context.Background()

	st.fail = true
	for i := 0; i < 2; i++ {
		if _, err := g.Get(ctx, "c", "k"); !errors.Is(err, errBoom) {
			t.Fatalf("failure %d = %v", i, err)
		}
	}
	// Third call is rejected by the breaker without reaching the store.
	st.fail = false
	if _, err := g.Get(ctx, "c", "k"); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker let the call through: %v", err)
	}
	if _, err := g.GetBatch(ctx, "c", []string{"k"}); !errors.Is(err, ErrOpen) {
		t.Errorf("GetBatch not guarded: %v", err)
	}
	if _, err := g.Query(ctx, "SCAN c"); !errors.Is(err, ErrOpen) {
		t.Errorf("Query not guarded: %v", err)
	}
	// Metadata still flows while open.
	if kf, err := g.KeyField(context.Background(), "c"); err != nil || kf != "id" {
		t.Errorf("KeyField = %q, %v", kf, err)
	}
	// After the cooldown a probe closes the circuit again.
	clock.Advance(time.Minute)
	if _, err := g.Get(ctx, "c", "k"); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if g.Breaker().State() != Closed {
		t.Errorf("state after recovery = %v", g.Breaker().State())
	}
}

// TestGuardPolystoreFaultIsolation: guarding a polystore wraps every store
// once (idempotent) and keeps healthy stores reachable while one is open.
func TestGuardPolystoreFaultIsolation(t *testing.T) {
	poly := core.NewPolystore()
	bad, good := newStubStore("bad"), newStubStore("good")
	bad.fail = true
	for _, s := range []core.Store{bad, good} {
		if err := poly.Register(s); err != nil {
			t.Fatal(err)
		}
	}
	set := NewSet(BreakerConfig{FailureThreshold: 1, Cooldown: time.Minute})
	if err := GuardPolystore(poly, set); err != nil {
		t.Fatal(err)
	}
	if err := GuardPolystore(poly, set); err != nil { // idempotent
		t.Fatal(err)
	}
	st, _ := poly.Database("bad")
	if _, ok := st.(*GuardedStore); !ok {
		t.Fatalf("store not guarded: %T", st)
	}
	if _, ok := st.(*GuardedStore).Unwrap().(*stubStore); !ok {
		t.Fatal("double-guarded store")
	}

	ctx := context.Background()
	if _, err := poly.Fetch(ctx, core.NewGlobalKey("bad", "c", "k")); err == nil {
		t.Fatal("bad store should fail")
	}
	if _, err := poly.Fetch(ctx, core.NewGlobalKey("bad", "c", "k")); !errors.Is(err, ErrOpen) {
		t.Errorf("K=1 breaker did not open: %v", err)
	}
	if _, err := poly.Fetch(ctx, core.NewGlobalKey("good", "c", "k")); err != nil {
		t.Errorf("healthy store affected: %v", err)
	}
	if !set.AnyOpen() {
		t.Error("AnyOpen = false with an open breaker")
	}
	snaps := set.Snapshot()
	if len(snaps) != 2 || snaps[0].Store != "bad" || snaps[0].State != "open" || snaps[1].State != "closed" {
		t.Errorf("snapshot = %+v", snaps)
	}
}

// TestGuardNotFoundIsHealthy: misses (the augmenter's lazy-deletion signal)
// never count toward the failure streak.
func TestGuardNotFoundIsHealthy(t *testing.T) {
	st := newStubStore("remote")
	miss := &notFoundStore{stubStore: st}
	g := Guard(miss, NewBreaker("remote", BreakerConfig{FailureThreshold: 1}))
	for i := 0; i < 5; i++ {
		if _, err := g.Get(context.Background(), "c", "k"); !errors.Is(err, core.ErrNotFound) {
			t.Fatalf("want ErrNotFound, got %v", err)
		}
	}
	if g.Breaker().State() != Closed {
		t.Error("not-found responses tripped the breaker")
	}
}

type notFoundStore struct{ *stubStore }

func (s *notFoundStore) Get(ctx context.Context, collection, key string) (core.Object, error) {
	return core.Object{}, core.ErrNotFound
}

// TestGuardZeroAllocsFaultFree: the guard adds no allocations around a
// healthy store call.
func TestGuardZeroAllocsFaultFree(t *testing.T) {
	g := Guard(newStubStore("remote"), NewBreaker("remote", BreakerConfig{}))
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		if _, err := g.Get(ctx, "c", "k"); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("guarded Get allocates %v per run, want 0", n)
	}
}
