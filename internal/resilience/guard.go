package resilience

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// GuardedStore decorates a core.Store with a circuit breaker: every data
// call asks the breaker first and records its outcome after. Metadata calls
// (Name, Kind, Collections, KeyField) bypass the breaker — they touch local
// state, not the remote engine's data path.
type GuardedStore struct {
	inner   core.Store
	breaker *Breaker
}

// Guard wraps a store with a breaker.
func Guard(inner core.Store, b *Breaker) *GuardedStore {
	return &GuardedStore{inner: inner, breaker: b}
}

// Name returns the wrapped store's name.
func (g *GuardedStore) Name() string { return g.inner.Name() }

// Kind returns the wrapped store's kind.
func (g *GuardedStore) Kind() core.StoreKind { return g.inner.Kind() }

// Collections lists the wrapped store's collections.
func (g *GuardedStore) Collections() []string { return g.inner.Collections() }

// Unwrap returns the underlying store.
func (g *GuardedStore) Unwrap() core.Store { return g.inner }

// Breaker exposes the guarding breaker (stats, tests).
func (g *GuardedStore) Breaker() *Breaker { return g.breaker }

// openErr names the store in the rejection; errors.Is(err, ErrOpen) still
// matches. Allocation happens only on the already-degraded path.
func (g *GuardedStore) openErr() error {
	return fmt.Errorf("resilience: store %s: %w", g.inner.Name(), ErrOpen)
}

// markBreaker stamps the caller's trace whenever the breaker is anything but
// closed — a rejection or a probing half-open call — so tail sampling keeps
// every trace that brushed a tripped breaker. Untraced or healthy calls pay
// one atomic load.
func (g *GuardedStore) markBreaker(ctx context.Context) {
	if st := g.breaker.State(); st != Closed {
		if sp := telemetry.SpanFromContext(ctx); sp != nil {
			sp.Mark(telemetry.FlagBreaker)
			sp.SetAttr("breaker_state", st.String())
		}
	}
}

// Get retrieves one object under the breaker.
func (g *GuardedStore) Get(ctx context.Context, collection, key string) (core.Object, error) {
	g.markBreaker(ctx)
	if g.breaker.Allow() != nil {
		return core.Object{}, g.openErr()
	}
	o, err := g.inner.Get(ctx, collection, key)
	g.breaker.Record(err)
	return o, err
}

// GetBatch retrieves many objects under the breaker.
func (g *GuardedStore) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	g.markBreaker(ctx)
	if g.breaker.Allow() != nil {
		return nil, g.openErr()
	}
	out, err := g.inner.GetBatch(ctx, collection, keys)
	g.breaker.Record(err)
	return out, err
}

// Query executes a native query under the breaker.
func (g *GuardedStore) Query(ctx context.Context, query string) ([]core.Object, error) {
	g.markBreaker(ctx)
	if g.breaker.Allow() != nil {
		return nil, g.openErr()
	}
	out, err := g.inner.Query(ctx, query)
	g.breaker.Record(err)
	return out, err
}

// KeyField forwards to the wrapped store when it can resolve key fields, so
// guarding does not hide validator support.
func (g *GuardedStore) KeyField(ctx context.Context, collection string) (string, error) {
	type keyResolver interface {
		KeyField(context.Context, string) (string, error)
	}
	if kr, ok := g.inner.(keyResolver); ok {
		return kr.KeyField(ctx, collection)
	}
	return "", core.ErrUnsupportedQuery
}

// RoundTrips forwards the round-trip count when the wrapped store tracks it.
func (g *GuardedStore) RoundTrips() uint64 {
	if c, ok := g.inner.(core.Counter); ok {
		return c.RoundTrips()
	}
	return 0
}

// Set is a registry of breakers, one per store name, sharing one config. The
// server owns one and serves it through /healthz and /stats.
type Set struct {
	cfg BreakerConfig

	mu       sync.Mutex
	breakers map[string]*Breaker
}

// NewSet builds an empty breaker registry.
func NewSet(cfg BreakerConfig) *Set {
	return &Set{cfg: cfg.withDefaults(), breakers: map[string]*Breaker{}}
}

// Breaker returns the breaker for a store name, creating it on first use.
func (s *Set) Breaker(name string) *Breaker {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.breakers[name]
	if !ok {
		b = NewBreaker(name, s.cfg)
		s.breakers[name] = b
	}
	return b
}

// Snapshot returns every breaker's status, sorted by store name.
func (s *Set) Snapshot() []BreakerStatus {
	s.mu.Lock()
	out := make([]BreakerStatus, 0, len(s.breakers))
	for _, b := range s.breakers {
		out = append(out, b.Snapshot())
	}
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Store < out[j].Store })
	return out
}

// AnyOpen reports whether any breaker currently rejects calls.
func (s *Set) AnyOpen() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, b := range s.breakers {
		if b.State() == Open {
			return true
		}
	}
	return false
}

// GuardPolystore re-registers every database of the polystore behind a
// breaker-guarded wrapper drawn from the set. Stores already guarded are
// left alone, so the call is idempotent.
func GuardPolystore(poly *core.Polystore, set *Set) error {
	for _, name := range poly.Databases() {
		st, err := poly.Database(name)
		if err != nil {
			return err
		}
		if _, ok := st.(*GuardedStore); ok {
			continue
		}
		poly.Deregister(name)
		if err := poly.Register(Guard(st, set.Breaker(name))); err != nil {
			return err
		}
	}
	return nil
}
