// Package explain assembles per-query execution profiles: a structured
// record of everything QUEPA decided and did while answering one augmented
// query. Where the telemetry package aggregates (counters, histograms,
// slow-query spans), explain attributes — the optimizer's decision
// provenance, the A' index work, the per-store fan-out and the cache traffic
// of one specific request, returned to the caller as a JSON artifact.
//
// A Recorder travels through the stack on the context, next to the telemetry
// span (WithRecorder / FromContext). The contract mirrors the telemetry kill
// switch: when instrumentation is disabled — or no recorder was attached —
// every hook is a nil-receiver no-op and the hot path neither allocates nor
// branches beyond a context lookup. Instrumented layers therefore call the
// Recorder unconditionally for cheap attributions (cache hits) and guard
// with `rec != nil` only where they would otherwise touch the clock.
//
// The Recorder is safe for concurrent use: the outer/inner augmenter
// strategies fetch from worker goroutines, all funneling into one profile.
package explain

import (
	"context"
	"sort"
	"sync"
	"time"

	"quepa/internal/telemetry"
)

// recorderKey carries the active Recorder on the context.
type recorderKey struct{}

// WithRecorder attaches a fresh Recorder for one query to ctx and returns
// both. When telemetry is globally disabled it returns ctx unchanged and a
// nil Recorder, honoring the kill-switch contract: no allocation, nothing
// recorded downstream.
func WithRecorder(ctx context.Context, route string) (context.Context, *Recorder) {
	if !telemetry.Enabled() {
		return ctx, nil
	}
	r := &Recorder{start: time.Now()}
	r.p.Route = route
	r.p.Start = r.start
	return context.WithValue(ctx, recorderKey{}, r), r
}

// FromContext returns the Recorder carried by ctx, or nil. The miss path —
// the common case for un-profiled queries — performs a context walk and
// nothing else: no allocation, no locks.
func FromContext(ctx context.Context) *Recorder {
	r, _ := ctx.Value(recorderKey{}).(*Recorder)
	return r
}

// Recorder accumulates one query's Profile as the query descends through the
// augmenter, the A' index, the cache and the stores. All methods are safe on
// a nil receiver (no-ops) and safe for concurrent use.
type Recorder struct {
	mu       sync.Mutex
	p        Profile
	start    time.Time
	cur      *AugmentationTrace // open augmentation; nil between calls
	finished bool
}

// SetQuery records the query identity. The first non-empty writer wins, so
// an exploration step that triggers a nested search keeps its own identity.
func (r *Recorder) SetQuery(database, query string, level int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.p.Database == "" {
		r.p.Database = database
	}
	if r.p.Query == "" {
		r.p.Query = query
		r.p.Level = level
	}
	r.mu.Unlock()
}

// SetOptimizer attaches the optimizer's decision provenance.
func (r *Recorder) SetOptimizer(d Decision) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.p.Optimizer = &d
	r.mu.Unlock()
}

// LocalQuery records the native-language query that produced the original
// (pre-augmentation) result.
func (r *Recorder) LocalQuery(store string, objects int, d time.Duration, failed bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	f := newFanout(store, "query", objects, objects, d, failed)
	if r.p.LocalQuery == nil {
		r.p.LocalQuery = &f
	} else {
		r.p.LocalQuery.merge(objects, objects, d, failed)
	}
	r.p.Totals.StoreCalls++
	if failed {
		r.p.Totals.StoreErrors++
	}
	r.mu.Unlock()
}

// BeginAugmentation opens the trace of one AugmentObjects call. A still-open
// trace (a caller that never reached EndAugmentation) is flushed first.
func (r *Recorder) BeginAugmentation(level, origins int, strategy string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.flushLocked()
	}
	r.cur = &AugmentationTrace{Level: level, Origins: origins, Strategy: strategy}
	r.mu.Unlock()
}

// PlanStats records the A' index work of plan building: unique candidate
// keys to fetch, index nodes expanded and edges scanned by the reachability
// traversals, and hits dropped because they were origins themselves.
func (r *Recorder) PlanStats(candidates, nodes, edges, skipped int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.CandidateKeys = candidates
		r.cur.IndexNodes += nodes
		r.cur.IndexEdges += edges
		r.cur.OriginsSkipped += skipped
	}
	r.mu.Unlock()
}

// SnapshotReaches records how many of the plan's reachability lookups were
// served from the A' index's read-optimized snapshot.
func (r *Recorder) SnapshotReaches(n int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.SnapshotReaches += n
	}
	r.mu.Unlock()
}

// RcacheHits attributes n result-cache hits to this query: reach sets or
// whole augmentation outcomes served from the epoch-consistent cache.
func (r *Recorder) RcacheHits(n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.RcacheHits += n
	}
	r.p.Totals.RcacheHits += n
	r.mu.Unlock()
}

// DeltaFrontierKeys attributes n frontier keys shipped to peers by the
// pipelined delta scatter.
func (r *Recorder) DeltaFrontierKeys(n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	r.p.Totals.DeltaFrontierKeys += n
	r.mu.Unlock()
}

// CacheHits attributes n object-cache hits to this query.
func (r *Recorder) CacheHits(n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.CacheHits += n
	}
	r.p.Totals.CacheHits += n
	r.mu.Unlock()
}

// CacheMisses attributes n object-cache misses to this query.
func (r *Recorder) CacheMisses(n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.CacheMisses += n
	}
	r.p.Totals.CacheMisses += n
	r.mu.Unlock()
}

// CoalescedHits attributes n coalesced fetches to this query: lookups that
// joined another request's in-flight store round trip instead of paying
// their own.
func (r *Recorder) CoalescedHits(n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.CoalescedHits += n
	}
	r.p.Totals.CoalescedHits += n
	r.mu.Unlock()
}

// NegativeHits attributes n negative-cache hits to this query: lookups
// answered "missing" from the recent-miss memory without a store round trip.
func (r *Recorder) NegativeHits(n int) {
	if r == nil || n == 0 {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.NegativeHits += n
	}
	r.p.Totals.NegativeHits += n
	r.mu.Unlock()
}

// StoreOp records one round trip to a store: keys requested, objects that
// came back, latency, and whether the call failed. Ops inside an open
// augmentation land in its per-store fan-out; ops outside (an exploration
// step fetching its origin) land on the profile directly.
func (r *Recorder) StoreOp(store, op string, keys, objects int, d time.Duration, failed bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Stores = mergeFanout(r.cur.Stores, store, op, keys, objects, d, failed)
	} else {
		r.p.Fetches = mergeFanout(r.p.Fetches, store, op, keys, objects, d, failed)
	}
	r.p.Totals.StoreCalls++
	if failed {
		r.p.Totals.StoreErrors++
	}
	r.mu.Unlock()
}

// ShardScatter records one scatter-gather leg to a cluster peer: frontier
// keys shipped, hits gathered back, latency, and whether the call failed
// (an open per-peer breaker counts as a failed call with zero wall time).
// Legs are merged per shard within the open augmentation trace.
func (r *Recorder) ShardScatter(shard int, peer string, keys, hits int, d time.Duration, failed bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		merged := false
		for i := range r.cur.Scatter {
			if r.cur.Scatter[i].Shard == shard {
				f := &r.cur.Scatter[i]
				f.Calls++
				f.Keys += keys
				f.Hits += hits
				if failed {
					f.Errors++
				}
				f.WallMS += durMS(d)
				merged = true
				break
			}
		}
		if !merged {
			f := ShardFanout{Shard: shard, Peer: peer, Calls: 1, Keys: keys, Hits: hits, WallMS: durMS(d)}
			if failed {
				f.Errors = 1
			}
			r.cur.Scatter = append(r.cur.Scatter, f)
		}
	}
	r.p.Totals.ScatterCalls++
	r.mu.Unlock()
}

// EndAugmentation closes the open trace: objects it contributed, wall time,
// and the error that aborted it (nil for success).
func (r *Recorder) EndAugmentation(objects int, d time.Duration, err error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.cur != nil {
		r.cur.Fetched = objects
		r.cur.WallMS = durMS(d)
		if err != nil {
			r.cur.Error = err.Error()
		}
		r.flushLocked()
	}
	r.mu.Unlock()
}

// RankPruned records augmented objects dropped by the presentation ranking
// (minp / topk).
func (r *Recorder) RankPruned(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.mu.Lock()
	r.p.Totals.RankPruned += n
	r.mu.Unlock()
}

// maxRetryTraces caps the per-profile retry trace list; the totals keep
// counting past it.
const maxRetryTraces = 32

// WireRetry records one retried wire round trip: the attempt that failed,
// why, and the backoff chosen before the next try.
func (r *Recorder) WireRetry(store, op string, attempt int, backoff time.Duration, err error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.p.Totals.WireRetries++
	if len(r.p.Retries) < maxRetryTraces {
		t := RetryTrace{Store: store, Op: op, Attempt: attempt, BackoffMS: durMS(backoff)}
		if err != nil {
			t.Error = err.Error()
		}
		r.p.Retries = append(r.p.Retries, t)
	}
	r.mu.Unlock()
}

// Degraded records one store dropped from the result: the augmenter kept
// going without it. Inside an open augmentation the entry lands on its trace;
// outside it lands on the profile.
func (r *Recorder) Degraded(store, reason string, level int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	d := DegradedStore{Store: store, Reason: reason, Level: level}
	if r.cur != nil {
		r.cur.Degraded = append(r.cur.Degraded, d)
	} else {
		r.p.Degraded = append(r.p.Degraded, d)
	}
	r.p.Totals.Degraded++
	r.mu.Unlock()
}

// WireBytes adds one wire round trip's frame sizes to the totals.
func (r *Recorder) WireBytes(sent, received int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.p.Totals.BytesSent += int64(sent)
	r.p.Totals.BytesReceived += int64(received)
	r.mu.Unlock()
}

// Finish seals the profile — wall time, objects returned — and returns it.
// Finish is idempotent; later calls return the same profile unchanged. A nil
// Recorder returns nil.
func (r *Recorder) Finish(objects int) *Profile {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.finished {
		r.finished = true
		if r.cur != nil {
			r.flushLocked()
		}
		r.p.WallMS = durMS(time.Since(r.start))
		r.p.Totals.Objects = objects
	}
	return &r.p
}

// flushLocked appends the open trace to the profile with its store fan-out
// in deterministic order. Callers hold r.mu.
func (r *Recorder) flushLocked() {
	sortFanout(r.cur.Stores)
	sort.Slice(r.cur.Scatter, func(i, j int) bool { return r.cur.Scatter[i].Shard < r.cur.Scatter[j].Shard })
	r.p.Augmentations = append(r.p.Augmentations, *r.cur)
	r.cur = nil
}

func newFanout(store, op string, keys, objects int, d time.Duration, failed bool) StoreFanout {
	f := StoreFanout{Store: store, Op: op, Calls: 1, Keys: keys, Objects: objects, MaxBatch: keys, WallMS: durMS(d)}
	if failed {
		f.Errors = 1
	}
	return f
}

func (f *StoreFanout) merge(keys, objects int, d time.Duration, failed bool) {
	f.Calls++
	f.Keys += keys
	f.Objects += objects
	if failed {
		f.Errors++
	}
	if keys > f.MaxBatch {
		f.MaxBatch = keys
	}
	f.WallMS += durMS(d)
}

func mergeFanout(list []StoreFanout, store, op string, keys, objects int, d time.Duration, failed bool) []StoreFanout {
	for i := range list {
		if list[i].Store == store && list[i].Op == op {
			list[i].merge(keys, objects, d, failed)
			return list
		}
	}
	return append(list, newFanout(store, op, keys, objects, d, failed))
}

func sortFanout(list []StoreFanout) {
	sort.Slice(list, func(i, j int) bool {
		if list[i].Store != list[j].Store {
			return list[i].Store < list[j].Store
		}
		return list[i].Op < list[j].Op
	})
}

func durMS(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
