package explain

import (
	"sort"
	"sync"
)

// DefaultBufferCapacity is the profile ring capacity of NewBuffer(0).
const DefaultBufferCapacity = 64

// Buffer is a fixed-capacity ring of finished profiles, newest evicting
// oldest, served by the server's /debug/explain endpoint. It is safe for
// concurrent use.
type Buffer struct {
	mu   sync.Mutex
	ring []*Profile
	next int
	seen uint64
}

// NewBuffer creates a buffer holding the last capacity profiles (<= 0
// selects DefaultBufferCapacity).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultBufferCapacity
	}
	return &Buffer{ring: make([]*Profile, 0, capacity)}
}

// Add retains a finished profile. Nil profiles (a Finish on a nil Recorder)
// are ignored.
func (b *Buffer) Add(p *Profile) {
	if p == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.seen++
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, p)
		return
	}
	b.ring[b.next] = p
	b.next = (b.next + 1) % cap(b.ring)
}

// Len returns the number of retained profiles.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.ring)
}

// Capacity returns the ring capacity.
func (b *Buffer) Capacity() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return cap(b.ring)
}

// Seen returns how many profiles were ever added (including evicted ones).
func (b *Buffer) Seen() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seen
}

// Snapshot returns the retained profiles slowest-first, optionally filtered
// to one route ("" keeps everything). Ties break newest-first.
func (b *Buffer) Snapshot(route string) []*Profile {
	b.mu.Lock()
	// Newest-to-oldest ring order: the stable sort below then keeps newer
	// profiles ahead of older ones with equal wall times.
	ordered := make([]*Profile, 0, len(b.ring))
	for i := len(b.ring) - 1; i >= 0; i-- {
		ordered = append(ordered, b.ring[(b.next+i)%len(b.ring)])
	}
	b.mu.Unlock()

	out := make([]*Profile, 0, len(ordered))
	for _, p := range ordered {
		if route == "" || p.Route == route {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].WallMS > out[j].WallMS })
	return out
}
