package explain

import "time"

// Profile is the structured EXPLAIN artifact of one query: identity, the
// optimizer's decision provenance, one trace per augmentation call, and the
// end-to-end totals. It marshals to the JSON embedded in `?explain=1`
// responses and served by /debug/explain.
type Profile struct {
	Route    string    `json:"route"`
	Database string    `json:"db,omitempty"`
	Query    string    `json:"query,omitempty"`
	Level    int       `json:"level"`
	Start    time.Time `json:"start"`
	WallMS   float64   `json:"wall_ms"`

	// Optimizer is the decision provenance, when an optimizer ran.
	Optimizer *Decision `json:"optimizer,omitempty"`
	// LocalQuery is the native-language query producing the original result.
	LocalQuery *StoreFanout `json:"local_query,omitempty"`
	// Augmentations holds one trace per AugmentObjects call — one for a
	// search, one per step for an exploration session request.
	Augmentations []AugmentationTrace `json:"augmentations,omitempty"`
	// Fetches are store ops outside any augmentation (e.g. an exploration
	// step fetching its selected origin object).
	Fetches []StoreFanout `json:"fetches,omitempty"`
	// Retries lists the wire round trips that had to be retried, in order
	// (capped; Totals.WireRetries keeps the full count).
	Retries []RetryTrace `json:"retries,omitempty"`
	// Degraded lists stores dropped outside any augmentation.
	Degraded []DegradedStore `json:"degraded,omitempty"`

	Totals Totals `json:"totals"`
}

// RetryTrace is one retried wire attempt: what failed and the backoff chosen
// before the next try.
type RetryTrace struct {
	Store     string  `json:"store"`
	Op        string  `json:"op"`
	Attempt   int     `json:"attempt"` // the attempt that failed, 1-based
	BackoffMS float64 `json:"backoff_ms"`
	Error     string  `json:"error,omitempty"`
}

// DegradedStore is one store whose contribution was dropped from a partial
// result: which store, why, and at which augmentation level.
type DegradedStore struct {
	Store  string `json:"store"`
	Reason string `json:"reason"`
	Level  int    `json:"level"`
}

// Decision is the optimizer's provenance for one query: the feature vector
// it saw, what each of T1–T4 predicted (and whether it was consulted at
// all), the clamping applied, the configuration that came out, and the
// explicit reason when the optimizer fell back to the default OUTER-BATCH.
//
// The type deliberately carries plain strings and numbers rather than
// augment/optimizer types: explain sits below both packages in the import
// graph so a Recorder can thread through the augmenter.
type Decision struct {
	Optimizer      string       `json:"optimizer"`
	Trained        bool         `json:"trained"`
	FeatureNames   []string     `json:"feature_names,omitempty"`
	Features       []float64    `json:"features,omitempty"`
	Trees          []TreeVote   `json:"trees,omitempty"`
	Chosen         ChosenConfig `json:"chosen"`
	FallbackReason string       `json:"fallback_reason,omitempty"`
}

// TreeVote is one model's contribution to a Decision.
type TreeVote struct {
	Tree      string `json:"tree"`              // "T1" … "T4"
	Consulted bool   `json:"consulted"`         // false: skipped (untrained, or strategy made it moot)
	Raw       string `json:"raw,omitempty"`     // the raw prediction
	Clamped   string `json:"clamped,omitempty"` // value after clamping / the delta rule
	Note      string `json:"note,omitempty"`    // why skipped, or which rule shaped Clamped
}

// ChosenConfig is the augment.Config the optimizer returned, as plain data.
type ChosenConfig struct {
	Strategy    string `json:"strategy"`
	BatchSize   int    `json:"batch_size"`
	ThreadsSize int    `json:"threads_size"`
	CacheSize   int    `json:"cache_size"`
}

// AugmentationTrace is the record of one α^n application: the index work
// that planned it, the cache traffic and per-store fan-out that executed it.
type AugmentationTrace struct {
	Level          int    `json:"level"`
	Strategy       string `json:"strategy"`
	Origins        int    `json:"origins"`
	CandidateKeys  int    `json:"candidate_keys"`
	IndexNodes     int    `json:"index_nodes"`
	IndexEdges     int    `json:"index_edges"`
	OriginsSkipped int    `json:"origins_skipped"`
	// SnapshotReaches counts the reachability lookups of this augmentation
	// that were served lock-free from the A' index's CSR snapshot (the rest
	// fell back to the locked traversal because a mutation was in flight).
	SnapshotReaches int `json:"snapshot_reaches,omitempty"`
	// RcacheHits counts reach/outcome lookups of this augmentation served
	// from the epoch-consistent result cache instead of recomputed.
	RcacheHits  int `json:"rcache_hits,omitempty"`
	CacheHits   int `json:"cache_hits"`
	CacheMisses int `json:"cache_misses"`
	CoalescedHits   int     `json:"coalesced_hits,omitempty"`
	NegativeHits    int     `json:"negative_hits,omitempty"`
	Fetched         int     `json:"fetched"`
	WallMS          float64 `json:"wall_ms"`
	Error           string  `json:"error,omitempty"`

	Stores []StoreFanout `json:"stores,omitempty"`
	// Scatter lists the per-shard fan-out of a clustered augmentation: one
	// entry per peer the coordinator's scatter-gather reach consulted.
	Scatter []ShardFanout `json:"scatter,omitempty"`
	// Degraded lists stores whose contribution this augmentation dropped
	// (store error or open breaker) instead of aborting the query.
	Degraded []DegradedStore `json:"degraded,omitempty"`
}

// ShardFanout aggregates this query's scatter-gather traffic to one cluster
// peer: frontier-expansion calls issued, frontier keys shipped, hits merged
// back, and calls that failed (breaker-open rejections included).
type ShardFanout struct {
	Shard  int     `json:"shard"`
	Peer   string  `json:"peer"`
	Calls  int     `json:"calls"`
	Keys   int     `json:"keys"`
	Hits   int     `json:"hits"`
	Errors int     `json:"errors,omitempty"`
	WallMS float64 `json:"wall_ms"`
}

// StoreFanout aggregates this query's round trips to one store for one op.
type StoreFanout struct {
	Store    string  `json:"store"`
	Op       string  `json:"op"` // "get", "getbatch" or "query"
	Calls    int     `json:"calls"`
	Keys     int     `json:"keys"`
	Objects  int     `json:"objects"`
	Errors   int     `json:"errors"`
	MaxBatch int     `json:"max_batch"`
	WallMS   float64 `json:"wall_ms"`
}

// Totals are the profile's end-to-end aggregates.
type Totals struct {
	Objects       int   `json:"objects"`
	StoreCalls    int   `json:"store_calls"`
	StoreErrors   int   `json:"store_errors"`
	CacheHits     int   `json:"cache_hits"`
	CacheMisses   int   `json:"cache_misses"`
	CoalescedHits int   `json:"coalesced_hits"`
	NegativeHits  int   `json:"negative_hits"`
	RankPruned    int   `json:"rank_pruned"`
	BytesSent     int64 `json:"wire_bytes_sent"`
	BytesReceived int64 `json:"wire_bytes_received"`
	WireRetries   int   `json:"wire_retries"`
	Degraded      int   `json:"degraded_stores"`
	ScatterCalls  int   `json:"scatter_calls,omitempty"`
	// RcacheHits counts results served from the epoch-consistent result
	// cache (reach sets, whole augmentation outcomes, scatter results).
	RcacheHits int `json:"rcache_hits,omitempty"`
	// DeltaFrontierKeys counts the frontier keys actually shipped to peers by
	// the pipelined delta scatter — the denominator for "how much did delta
	// encoding save" is Totals.ScatterCalls × the full frontier size.
	DeltaFrontierKeys int `json:"delta_frontier_keys,omitempty"`
}
