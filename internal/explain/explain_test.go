package explain

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"quepa/internal/telemetry"
)

func TestRecorderLifecycle(t *testing.T) {
	ctx, rec := WithRecorder(context.Background(), "/search")
	if rec == nil {
		t.Fatal("WithRecorder returned nil with telemetry enabled")
	}
	if got := FromContext(ctx); got != rec {
		t.Fatalf("FromContext = %p, want %p", got, rec)
	}

	rec.SetQuery("transactions", "SELECT * FROM sales", 2)
	rec.SetQuery("other", "later writer", 9) // first writer wins
	rec.SetOptimizer(Decision{Optimizer: "ADAPTIVE", Trained: true,
		Trees: []TreeVote{{Tree: "T1", Consulted: true, Raw: "BATCH", Clamped: "BATCH"}}})
	rec.LocalQuery("transactions", 5, 2*time.Millisecond, false)

	rec.BeginAugmentation(2, 5, "OUTER-BATCH")
	rec.PlanStats(12, 30, 44, 2)
	rec.CacheHits(3)
	rec.CacheMisses(9)
	rec.StoreOp("catalogue", "getbatch", 6, 6, time.Millisecond, false)
	rec.StoreOp("catalogue", "getbatch", 3, 2, time.Millisecond, false)
	rec.StoreOp("social", "get", 1, 0, time.Millisecond, true)
	rec.EndAugmentation(8, 4*time.Millisecond, nil)

	rec.WireBytes(100, 2000)
	rec.RankPruned(3)
	p := rec.Finish(13)
	if p == nil {
		t.Fatal("Finish returned nil")
	}

	if p.Route != "/search" || p.Database != "transactions" || p.Query != "SELECT * FROM sales" || p.Level != 2 {
		t.Errorf("identity = %q %q %q %d", p.Route, p.Database, p.Query, p.Level)
	}
	if p.Optimizer == nil || !p.Optimizer.Trained || len(p.Optimizer.Trees) != 1 {
		t.Errorf("optimizer = %+v", p.Optimizer)
	}
	if p.LocalQuery == nil || p.LocalQuery.Calls != 1 || p.LocalQuery.Objects != 5 {
		t.Errorf("local query = %+v", p.LocalQuery)
	}
	if len(p.Augmentations) != 1 {
		t.Fatalf("augmentations = %d", len(p.Augmentations))
	}
	a := p.Augmentations[0]
	if a.Level != 2 || a.Strategy != "OUTER-BATCH" || a.Origins != 5 {
		t.Errorf("trace header = %+v", a)
	}
	if a.CandidateKeys != 12 || a.IndexNodes != 30 || a.IndexEdges != 44 || a.OriginsSkipped != 2 {
		t.Errorf("plan stats = %+v", a)
	}
	if a.CacheHits != 3 || a.CacheMisses != 9 || a.Fetched != 8 {
		t.Errorf("cache/fetch = %+v", a)
	}
	// Fan-out is merged per store+op and sorted by store name.
	if len(a.Stores) != 2 {
		t.Fatalf("stores = %+v", a.Stores)
	}
	if a.Stores[0].Store != "catalogue" || a.Stores[0].Calls != 2 || a.Stores[0].Keys != 9 ||
		a.Stores[0].Objects != 8 || a.Stores[0].MaxBatch != 6 {
		t.Errorf("catalogue fan-out = %+v", a.Stores[0])
	}
	if a.Stores[1].Store != "social" || a.Stores[1].Errors != 1 {
		t.Errorf("social fan-out = %+v", a.Stores[1])
	}

	tot := p.Totals
	if tot.Objects != 13 || tot.StoreCalls != 4 || tot.StoreErrors != 1 ||
		tot.CacheHits != 3 || tot.CacheMisses != 9 || tot.RankPruned != 3 ||
		tot.BytesSent != 100 || tot.BytesReceived != 2000 {
		t.Errorf("totals = %+v", tot)
	}
	if p.WallMS <= 0 {
		t.Errorf("wall = %v", p.WallMS)
	}
}

func TestFinishIdempotent(t *testing.T) {
	_, rec := WithRecorder(context.Background(), "/search")
	p1 := rec.Finish(7)
	p2 := rec.Finish(99)
	if p1 != p2 || p2.Totals.Objects != 7 {
		t.Errorf("Finish not idempotent: %p/%p objects=%d", p1, p2, p2.Totals.Objects)
	}
}

func TestStoreOpOutsideAugmentation(t *testing.T) {
	_, rec := WithRecorder(context.Background(), "/explore/step")
	rec.StoreOp("transactions", "get", 1, 1, time.Millisecond, false)
	p := rec.Finish(1)
	if len(p.Fetches) != 1 || p.Fetches[0].Op != "get" {
		t.Errorf("fetches = %+v", p.Fetches)
	}
	if len(p.Augmentations) != 0 {
		t.Errorf("unexpected augmentations: %+v", p.Augmentations)
	}
}

func TestEndAugmentationError(t *testing.T) {
	_, rec := WithRecorder(context.Background(), "/search")
	rec.BeginAugmentation(1, 2, "INNER")
	rec.EndAugmentation(0, time.Millisecond, errors.New("store down"))
	p := rec.Finish(0)
	if len(p.Augmentations) != 1 || p.Augmentations[0].Error != "store down" {
		t.Errorf("augmentations = %+v", p.Augmentations)
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	rec.SetQuery("db", "q", 1)
	rec.SetOptimizer(Decision{})
	rec.LocalQuery("db", 1, 0, false)
	rec.BeginAugmentation(0, 0, "BATCH")
	rec.PlanStats(1, 2, 3, 4)
	rec.CacheHits(1)
	rec.CacheMisses(1)
	rec.StoreOp("db", "get", 1, 1, 0, false)
	rec.EndAugmentation(0, 0, nil)
	rec.RankPruned(1)
	rec.WireBytes(1, 1)
	if p := rec.Finish(0); p != nil {
		t.Errorf("nil Finish = %+v", p)
	}
}

func TestWithRecorderDisabled(t *testing.T) {
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	ctx := context.Background()
	got, rec := WithRecorder(ctx, "/search")
	if rec != nil {
		t.Fatal("recorder allocated with telemetry disabled")
	}
	if got != ctx {
		t.Error("context was rebuilt with telemetry disabled")
	}
}

// TestOffPathAllocations pins the zero-cost-when-off contract: a context miss
// and every nil-receiver hook must not allocate.
func TestOffPathAllocations(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(100, func() {
		if rec := FromContext(ctx); rec != nil {
			t.Fatal("unexpected recorder")
		}
	}); n != 0 {
		t.Errorf("FromContext miss allocates %v per run", n)
	}
	var rec *Recorder
	if n := testing.AllocsPerRun(100, func() {
		rec.CacheHits(1)
		rec.StoreOp("db", "get", 1, 1, 0, false)
		rec.WireBytes(4, 4)
	}); n != 0 {
		t.Errorf("nil recorder hooks allocate %v per run", n)
	}
	prev := telemetry.SetEnabled(false)
	defer telemetry.SetEnabled(prev)
	if n := testing.AllocsPerRun(100, func() {
		if _, r := WithRecorder(ctx, "/search"); r != nil {
			t.Fatal("unexpected recorder")
		}
	}); n != 0 {
		t.Errorf("disabled WithRecorder allocates %v per run", n)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	_, rec := WithRecorder(context.Background(), "/search")
	rec.BeginAugmentation(1, 8, "OUTER")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				rec.CacheMisses(1)
				rec.StoreOp("catalogue", "get", 1, 1, time.Microsecond, false)
			}
		}()
	}
	wg.Wait()
	rec.EndAugmentation(800, time.Millisecond, nil)
	p := rec.Finish(800)
	if p.Totals.StoreCalls != 800 || p.Totals.CacheMisses != 800 {
		t.Errorf("totals = %+v", p.Totals)
	}
}

func TestBufferEvictionAndOrdering(t *testing.T) {
	b := NewBuffer(3)
	add := func(route string, wall float64) {
		b.Add(&Profile{Route: route, WallMS: wall})
	}
	b.Add(nil) // ignored
	add("/search", 5)
	add("/search", 1)
	add("/explore/step", 9)
	add("/search", 3) // evicts the oldest (wall=5)
	if b.Len() != 3 || b.Capacity() != 3 || b.Seen() != 4 {
		t.Fatalf("len=%d cap=%d seen=%d", b.Len(), b.Capacity(), b.Seen())
	}
	all := b.Snapshot("")
	if len(all) != 3 || all[0].WallMS != 9 || all[1].WallMS != 3 || all[2].WallMS != 1 {
		t.Errorf("snapshot order = %+v", all)
	}
	search := b.Snapshot("/search")
	if len(search) != 2 || search[0].WallMS != 3 {
		t.Errorf("route filter = %+v", search)
	}
	if got := b.Snapshot("/nope"); len(got) != 0 {
		t.Errorf("unknown route = %+v", got)
	}
}

// TestSnapshotTieBreakNewestFirst: equal wall times order newest-first, as
// Snapshot documents, including across a ring eviction.
func TestSnapshotTieBreakNewestFirst(t *testing.T) {
	b := NewBuffer(4)
	for _, p := range []struct {
		query string
		wall  float64
	}{{"old", 5}, {"mid", 5}, {"top", 7}, {"new", 5}} {
		b.Add(&Profile{Route: "/search", Query: p.query, WallMS: p.wall})
	}
	want := []string{"top", "new", "mid", "old"}
	got := b.Snapshot("")
	for i, p := range got {
		if p.Query != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q", i, p.Query, want[i])
		}
	}
	// Evict "old" (oldest); the remaining ties still order newest-first.
	b.Add(&Profile{Route: "/search", Query: "newest", WallMS: 5})
	want = []string{"top", "newest", "new", "mid"}
	got = b.Snapshot("")
	for i, p := range got {
		if p.Query != want[i] {
			t.Fatalf("after eviction snapshot[%d] = %q, want %q", i, p.Query, want[i])
		}
	}
}

func TestWriteTree(t *testing.T) {
	_, rec := WithRecorder(context.Background(), "/search")
	rec.SetQuery("transactions", "SELECT * FROM sales", 1)
	rec.SetOptimizer(Decision{
		Optimizer:    "ADAPTIVE",
		Trained:      true,
		FeatureNames: []string{"result_size"},
		Features:     []float64{5},
		Trees: []TreeVote{
			{Tree: "T1", Consulted: true, Raw: "BATCH", Clamped: "BATCH"},
			{Tree: "T3", Note: "strategy not concurrent"},
		},
		Chosen: ChosenConfig{Strategy: "BATCH", BatchSize: 64},
	})
	rec.LocalQuery("transactions", 5, time.Millisecond, false)
	rec.BeginAugmentation(1, 5, "BATCH")
	rec.PlanStats(7, 11, 13, 0)
	rec.CacheMisses(7)
	rec.StoreOp("catalogue", "getbatch", 7, 7, time.Millisecond, false)
	rec.EndAugmentation(7, 2*time.Millisecond, nil)
	rec.RankPruned(2)
	p := rec.Finish(12)

	var sb strings.Builder
	p.WriteTree(&sb)
	out := sb.String()
	for _, want := range []string{
		"/search", "db=transactions", "SELECT * FROM sales",
		"optimizer ADAPTIVE", "result_size=5",
		"T1 raw=BATCH", "T3 skipped (strategy not concurrent)",
		"chosen BATCH",
		"augment level=1 strategy=BATCH",
		"candidates=7",
		"catalogue getbatch",
		"rank pruned 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree output missing %q:\n%s", want, out)
		}
	}

	var nilSB strings.Builder
	(*Profile)(nil).WriteTree(&nilSB)
	if !strings.Contains(nilSB.String(), "no profile") {
		t.Errorf("nil tree = %q", nilSB.String())
	}
}
