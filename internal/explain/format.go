package explain

import (
	"fmt"
	"io"
)

// WriteTree pretty-prints the profile as an indented tree — the rendering of
// quepa-explore's `explain` verb. Writing a nil profile prints a placeholder
// so callers can pass a Finish result through unconditionally.
func (p *Profile) WriteTree(w io.Writer) {
	if p == nil {
		fmt.Fprintln(w, "(no profile)")
		return
	}
	fmt.Fprintf(w, "%s", p.Route)
	if p.Database != "" {
		fmt.Fprintf(w, " db=%s", p.Database)
	}
	if p.Query != "" {
		fmt.Fprintf(w, " q=%q", p.Query)
	}
	fmt.Fprintf(w, " level=%d\n", p.Level)
	fmt.Fprintf(w, "  wall %.3fms  objects %d  store calls %d (%d errors)  wire %dB sent / %dB received\n",
		p.WallMS, p.Totals.Objects, p.Totals.StoreCalls, p.Totals.StoreErrors,
		p.Totals.BytesSent, p.Totals.BytesReceived)

	if o := p.Optimizer; o != nil {
		fmt.Fprintf(w, "  optimizer %s", o.Optimizer)
		if !o.Trained {
			fmt.Fprint(w, " (untrained)")
		}
		fmt.Fprintln(w)
		if len(o.FeatureNames) == len(o.Features) && len(o.Features) > 0 {
			fmt.Fprint(w, "    features")
			for i, name := range o.FeatureNames {
				fmt.Fprintf(w, " %s=%g", name, o.Features[i])
			}
			fmt.Fprintln(w)
		}
		for _, t := range o.Trees {
			fmt.Fprintf(w, "    %s", t.Tree)
			if !t.Consulted {
				fmt.Fprintf(w, " skipped (%s)\n", t.Note)
				continue
			}
			fmt.Fprintf(w, " raw=%s", t.Raw)
			if t.Clamped != "" {
				fmt.Fprintf(w, " -> %s", t.Clamped)
			}
			if t.Note != "" {
				fmt.Fprintf(w, " (%s)", t.Note)
			}
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "    chosen %s(batch=%d,threads=%d,cache=%d)\n",
			o.Chosen.Strategy, o.Chosen.BatchSize, o.Chosen.ThreadsSize, o.Chosen.CacheSize)
		if o.FallbackReason != "" {
			fmt.Fprintf(w, "    fallback: %s\n", o.FallbackReason)
		}
	}

	if lq := p.LocalQuery; lq != nil {
		fmt.Fprintf(w, "  local query %s: %d objects in %.3fms", lq.Store, lq.Objects, lq.WallMS)
		if lq.Errors > 0 {
			fmt.Fprintf(w, " (%d errors)", lq.Errors)
		}
		fmt.Fprintln(w)
	}

	for _, a := range p.Augmentations {
		fmt.Fprintf(w, "  augment level=%d strategy=%s origins=%d candidates=%d -> %d objects (%.3fms)\n",
			a.Level, a.Strategy, a.Origins, a.CandidateKeys, a.Fetched, a.WallMS)
		fmt.Fprintf(w, "    index nodes=%d edges=%d origins-skipped=%d\n",
			a.IndexNodes, a.IndexEdges, a.OriginsSkipped)
		fmt.Fprintf(w, "    cache %d hits / %d misses\n", a.CacheHits, a.CacheMisses)
		if a.RcacheHits > 0 {
			fmt.Fprintf(w, "    rcache %d hits (reach/outcome served from the result cache)\n", a.RcacheHits)
		}
		for _, f := range a.Stores {
			writeFanout(w, "    ", f)
		}
		if a.Error != "" {
			fmt.Fprintf(w, "    error: %s\n", a.Error)
		}
	}

	for _, f := range p.Fetches {
		writeFanout(w, "  ", f)
	}
	if p.Totals.RankPruned > 0 {
		fmt.Fprintf(w, "  rank pruned %d augmented objects below the presentation threshold\n", p.Totals.RankPruned)
	}
	if p.Totals.RcacheHits > 0 || p.Totals.DeltaFrontierKeys > 0 {
		fmt.Fprintf(w, "  rcache %d hits  delta-frontier %d keys shipped to peers\n",
			p.Totals.RcacheHits, p.Totals.DeltaFrontierKeys)
	}
}

func writeFanout(w io.Writer, prefix string, f StoreFanout) {
	fmt.Fprintf(w, "%sstore %s %s: calls=%d keys=%d objects=%d errors=%d max-batch=%d %.3fms\n",
		prefix, f.Store, f.Op, f.Calls, f.Keys, f.Objects, f.Errors, f.MaxBatch, f.WallMS)
}
