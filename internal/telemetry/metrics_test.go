package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a test counter")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestCounterSeriesIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("hits_total", "", L("store", "s1"), L("op", "get"))
	b := r.Counter("hits_total", "", L("op", "get"), L("store", "s1")) // same set, reordered
	other := r.Counter("hits_total", "", L("store", "s2"), L("op", "get"))
	if a != b {
		t.Error("label order created distinct series")
	}
	if a == other {
		t.Error("different label values shared a series")
	}
	a.Add(3)
	if got := r.CounterValue("hits_total", L("op", "get"), L("store", "s1")); got != 3 {
		t.Errorf("CounterValue = %d, want 3", got)
	}
	if got := r.CounterValue("hits_total", L("op", "get"), L("store", "ghost")); got != 0 {
		t.Errorf("missing series CounterValue = %d, want 0", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil)
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w+1) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("count = %d, want %d", got, workers*perWorker)
	}
	wantSum := time.Duration(0)
	for w := 0; w < workers; w++ {
		wantSum += time.Duration(w+1) * time.Millisecond * perWorker
	}
	if got := h.Sum(); got != wantSum {
		t.Errorf("sum = %v, want %v", got, wantSum)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", nil)
	// 100 observations of 1ms, 100 of 100ms: p50 lands in the 1ms bucket,
	// p95 and p99 in the 100ms bucket.
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
		h.Observe(100 * time.Millisecond)
	}
	snap := h.Snapshot()
	if snap.Count != 200 {
		t.Fatalf("count = %d", snap.Count)
	}
	if snap.P50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want <= 2ms", snap.P50)
	}
	if snap.P95 < 50*time.Millisecond || snap.P95 > 100*time.Millisecond {
		t.Errorf("p95 = %v, want in (50ms, 100ms]", snap.P95)
	}
	if snap.P99 < snap.P95 {
		t.Errorf("p99 %v < p95 %v", snap.P99, snap.P95)
	}
	if h.Quantile(0) != 0 || h.Quantile(1) != 0 {
		t.Error("out-of-range quantiles should be 0")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("empty_seconds", "", nil)
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50 = %v", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "requests served", L("code", "200"))
	c.Add(7)
	g := r.Gauge("sessions", "active sessions")
	g.Set(3)
	r.GaugeFunc("objects", "live objects", func() float64 { return 42 })
	r.CounterFunc("evictions_total", "evictions", func() uint64 { return 5 })
	h := r.Histogram("lat_seconds", "latency", []float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond)
	h.Observe(5 * time.Millisecond)
	h.Observe(2 * time.Second) // +Inf bucket

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP requests_total requests served\n",
		"# TYPE requests_total counter\n",
		`requests_total{code="200"} 7` + "\n",
		"# TYPE sessions gauge\n",
		"sessions 3\n",
		"objects 42\n",
		"evictions_total 5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.001"} 1` + "\n",
		`lat_seconds_bucket{le="0.01"} 2` + "\n",
		`lat_seconds_bucket{le="0.1"} 2` + "\n",
		`lat_seconds_bucket{le="+Inf"} 3` + "\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", L("q", "a\"b\\c\nd")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `esc_total{q="a\"b\\c\nd"} 1`) {
		t.Errorf("bad escaping: %s", sb.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("registering x_total as gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestDisabledInstruments(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	r := NewRegistry()
	c := r.Counter("off_total", "")
	c.Inc()
	if c.Value() != 0 {
		t.Error("disabled counter incremented")
	}
	h := r.Histogram("off_seconds", "", nil)
	h.Observe(time.Second)
	h.Since(Now()) // Now() is zero while disabled
	if h.Count() != 0 {
		t.Error("disabled histogram observed")
	}
	if !Now().IsZero() {
		t.Error("Now() should be zero while disabled")
	}
}
