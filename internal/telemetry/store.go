package telemetry

// StoreOps bundles the per-operation latency histograms of one database so a
// store engine resolves its handles once at construction and pays only a
// Now/Since pair per served operation. All stores share one family,
// quepa_store_op_duration_seconds, labeled by database and operation.
type StoreOps struct {
	Get      *Histogram
	GetBatch *Histogram
	Query    *Histogram
}

const storeOpName = "quepa_store_op_duration_seconds"
const storeOpHelp = "latency of store operations by database and operation"

// NewStoreOps registers (or finds) the three operation histograms of the
// named database on the default registry.
func NewStoreOps(db string) StoreOps {
	return StoreOps{
		Get:      NewHistogram(storeOpName, storeOpHelp, nil, L("db", db), L("op", "get")),
		GetBatch: NewHistogram(storeOpName, storeOpHelp, nil, L("db", db), L("op", "getbatch")),
		Query:    NewHistogram(storeOpName, storeOpHelp, nil, L("db", db), L("op", "query")),
	}
}
