package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// decodeLines parses every JSON log line in buf.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line %q is not JSON: %v", sc.Text(), err)
		}
		out = append(out, m)
	}
	return out
}

func TestLoggerJSONShape(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogDebug)
	l.Log(LogWarn, "slow query", F("route", "/search"), F("ms", 412.7), F("status", 200))

	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("lines = %d", len(lines))
	}
	m := lines[0]
	if m["level"] != "warn" || m["msg"] != "slow query" {
		t.Errorf("line = %v", m)
	}
	if m["route"] != "/search" || m["ms"] != 412.7 || m["status"] != float64(200) {
		t.Errorf("fields = %v", m)
	}
	ts, _ := m["ts"].(string)
	if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
		t.Errorf("ts %q: %v", ts, err)
	}
	// Field order is deterministic: ts, level, msg, then argument order.
	line := strings.TrimSpace(buf.String())
	if !strings.HasPrefix(line, `{"ts":"`) || strings.Index(line, `"route"`) > strings.Index(line, `"ms"`) {
		t.Errorf("field order broken: %s", line)
	}
}

func TestLoggerLevelFilter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogWarn)
	l.Log(LogDebug, "dropped")
	l.Log(LogInfo, "dropped")
	l.Log(LogWarn, "kept")
	l.Log(LogError, "kept")
	if lines := decodeLines(t, &buf); len(lines) != 2 {
		t.Errorf("lines = %d, want 2", len(lines))
	}
	l.SetLevel(LogDebug)
	if l.Level() != LogDebug {
		t.Errorf("level = %v", l.Level())
	}
	l.Log(LogDebug, "now kept")
	if lines := decodeLines(t, &buf); len(lines) != 3 {
		t.Errorf("lines after SetLevel = %d, want 3", len(lines))
	}
}

func TestLogEverySampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogInfo)
	for i := 0; i < 7; i++ {
		l.LogEvery(3, LogWarn, "optimizer fallback", F("reason", "untrained"))
	}
	// Occurrences 1, 4 and 7 are emitted.
	lines := decodeLines(t, &buf)
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if lines[0]["suppressed"] != float64(0) {
		t.Errorf("first line suppressed = %v", lines[0]["suppressed"])
	}
	for _, m := range lines[1:] {
		if m["suppressed"] != float64(2) || m["sampled_every"] != float64(3) {
			t.Errorf("sampled line = %v", m)
		}
	}

	// Messages sample independently.
	buf.Reset()
	l.LogEvery(1000, LogWarn, "another message")
	if lines := decodeLines(t, &buf); len(lines) != 1 {
		t.Errorf("independent message not emitted: %d lines", len(lines))
	}

	// n <= 1 emits everything.
	buf.Reset()
	for i := 0; i < 4; i++ {
		l.LogEvery(1, LogWarn, "unsampled")
	}
	if lines := decodeLines(t, &buf); len(lines) != 4 {
		t.Errorf("n=1 lines = %d, want 4", len(lines))
	}
}

func TestLogEveryRespectsLevel(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogError)
	for i := 0; i < 5; i++ {
		l.LogEvery(2, LogWarn, "below minimum")
	}
	if buf.Len() != 0 {
		t.Errorf("output = %q", buf.String())
	}
}

func TestUnmarshalableFieldDegrades(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LogInfo)
	l.Log(LogInfo, "weird", F("ch", make(chan int)))
	lines := decodeLines(t, &buf)
	if len(lines) != 1 {
		t.Fatalf("lines = %d", len(lines))
	}
	if _, ok := lines[0]["ch"].(string); !ok {
		t.Errorf("channel field = %v", lines[0]["ch"])
	}
}

func TestParseLogLevel(t *testing.T) {
	for s, want := range map[string]LogLevel{
		"debug": LogDebug, "info": LogInfo, "warn": LogWarn, "warning": LogWarn, "error": LogError,
	} {
		got, err := ParseLogLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLogLevel("loud"); err == nil {
		t.Error("bad level accepted")
	}
	if got := LogLevel(42).String(); got != "level(42)" {
		t.Errorf("unknown level = %q", got)
	}
}

func TestDefaultLoggerRedirect(t *testing.T) {
	var buf bytes.Buffer
	SetLogOutput(&buf)
	defer SetLogOutput(nil) // tests must not write to the real stderr afterwards
	prev := DefaultLogger().Level()
	SetLogLevel(LogInfo)
	defer SetLogLevel(prev)

	Log(LogInfo, "via package")
	LogEvery(1, LogInfo, "sampled via package")
	lines := decodeLines(t, &buf)
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0]["msg"] != "via package" {
		t.Errorf("line = %v", lines[0])
	}
}
