package telemetry

import (
	"bufio"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestPromLintExposition is the text-exposition conformance gate behind
// `make promlint`: it renders a registry exercising every metric shape the
// server exports — counters, gauges, function-backed series, histograms,
// escaped label values — and lints the output against the Prometheus text
// format (version 0.0.4) rules that scrapers actually enforce:
//
//   - every sample belongs to a family announced by # HELP and # TYPE, and
//     family blocks are contiguous (no sample after another family started)
//   - metric and label names match the spec's character sets
//   - histogram families expose _bucket/_sum/_count, bucket counts are
//     cumulative and monotone in le, an le="+Inf" bucket exists, and _count
//     equals the +Inf bucket
//   - every sample value parses as a float; label values escape \ " and
//     newlines
func TestPromLintExposition(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)

	reg := NewRegistry()
	reg.Counter("quepa_http_requests_total", "HTTP requests",
		L("route", "/search"), L("code", "200")).Add(7)
	reg.Counter("quepa_http_errors_total", "HTTP 5xx responses by route",
		L("route", "/search")).Add(2)
	reg.Gauge("quepa_sessions_active", "open sessions").Set(3)
	reg.GaugeFunc("quepa_slo_burn_rate", "burn rate",
		func() float64 { return 14.4 }, L("route", "/search"), L("window", "5m"))
	reg.GaugeFunc("quepa_slo_burn_rate", "burn rate",
		func() float64 { return 0.25 }, L("route", "/search"), L("window", "1h"))
	reg.Counter("quepa_escapes_total", "label escaping",
		L("q", "say \"hi\"\nback\\slash")).Inc()
	h := reg.Histogram("quepa_http_request_duration_seconds", "latency", nil,
		L("route", "/search"))
	for _, d := range []time.Duration{
		20 * time.Microsecond, 800 * time.Microsecond, 3 * time.Millisecond,
		40 * time.Millisecond, 2 * time.Second, time.Minute, // last lands in +Inf
	} {
		h.Observe(d)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, sb.String())
}

// TestPromLintDefaultRegistry lints whatever the process-global registry has
// accumulated by the time this test runs — the closest in-tree approximation
// of scraping a live /metrics endpoint.
func TestPromLintDefaultRegistry(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	NewCounter("promlint_default_probe_total", "ensures the registry is non-empty").Inc()
	var sb strings.Builder
	if err := Default().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, sb.String())
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// One sample line: name, optional {labels}, value. Label values are
	// double-quoted with \\, \" and \n escapes.
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{((?:[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*",?)*)\})? (\S+)$`)
	labelRe  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\\n]|\\\\|\\"|\\n)*)"`)
)

// histState tracks one labeled histogram series while linting its buckets.
type histState struct {
	lastLe  float64
	lastCum uint64
	infSeen bool
	inf     uint64
}

func lintExposition(t *testing.T, text string) {
	t.Helper()
	if strings.TrimSpace(text) == "" {
		t.Fatal("empty exposition")
	}
	validTypes := map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
	helpSeen := map[string]bool{}
	typeOf := map[string]string{}
	closed := map[string]bool{} // families whose block has ended
	hists := map[string]*histState{}
	counts := map[string]uint64{} // histogram series -> _count value
	current := ""

	endFamily := func() {
		if current != "" {
			closed[current] = true
		}
	}

	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			name := parts[0]
			if !metricNameRe.MatchString(name) {
				t.Errorf("line %d: bad metric name %q in HELP", lineNo, name)
			}
			if name != current {
				endFamily()
				current = name
			}
			if closed[name] {
				t.Errorf("line %d: family %s reopened after its block ended", lineNo, name)
			}
			helpSeen[name] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 {
				t.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				continue
			}
			name, kind := parts[0], parts[1]
			if !validTypes[kind] {
				t.Errorf("line %d: unknown TYPE %q", lineNo, kind)
			}
			if prevKind, ok := typeOf[name]; ok && prevKind != kind {
				t.Errorf("line %d: family %s changed type %s -> %s", lineNo, name, prevKind, kind)
			}
			typeOf[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comment
		}

		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: unparseable sample %q", lineNo, line)
			continue
		}
		name, labelBlob, value := m[1], m[3], m[4]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			t.Errorf("line %d: sample value %q is not a float: %v", lineNo, value, err)
		}
		family := name
		kind := typeOf[name]
		if kind == "" {
			// Histogram samples use suffixed names under the family's TYPE.
			for _, suffix := range []string{"_bucket", "_sum", "_count"} {
				base := strings.TrimSuffix(name, suffix)
				if base != name && typeOf[base] == "histogram" {
					family, kind = base, "histogram"
					break
				}
			}
		}
		if kind == "" {
			t.Errorf("line %d: sample %s has no preceding TYPE", lineNo, name)
			continue
		}
		if !helpSeen[family] {
			t.Errorf("line %d: sample %s has no preceding HELP", lineNo, name)
		}
		if family != current {
			t.Errorf("line %d: sample of family %s inside block of %s", lineNo, family, current)
		}

		var le string
		var seriesKey strings.Builder
		seriesKey.WriteString(family)
		for _, lm := range labelRe.FindAllStringSubmatch(labelBlob, -1) {
			if !labelNameRe.MatchString(lm[1]) {
				t.Errorf("line %d: bad label name %q", lineNo, lm[1])
			}
			if lm[1] == "le" {
				le = lm[2]
				continue // bucket identity excludes le
			}
			fmt.Fprintf(&seriesKey, "|%s=%s", lm[1], lm[2])
		}

		if kind == "histogram" && strings.HasSuffix(name, "_bucket") {
			hs := hists[seriesKey.String()]
			if hs == nil {
				hs = &histState{lastLe: -1}
				hists[seriesKey.String()] = hs
			}
			cum, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Errorf("line %d: bucket count %q not an integer", lineNo, value)
				continue
			}
			if le == "+Inf" {
				hs.infSeen, hs.inf = true, cum
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					t.Errorf("line %d: bucket le %q not a float", lineNo, le)
					continue
				}
				if bound <= hs.lastLe {
					t.Errorf("line %d: bucket bounds not increasing (%v after %v)", lineNo, bound, hs.lastLe)
				}
				hs.lastLe = bound
			}
			if cum < hs.lastCum {
				t.Errorf("line %d: bucket counts not cumulative (%d after %d)", lineNo, cum, hs.lastCum)
			}
			hs.lastCum = cum
		}
		if kind == "histogram" && strings.HasSuffix(name, "_count") {
			n, err := strconv.ParseUint(value, 10, 64)
			if err != nil {
				t.Errorf("line %d: _count %q not an integer", lineNo, value)
				continue
			}
			counts[seriesKey.String()] = n
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	for key, hs := range hists {
		if !hs.infSeen {
			t.Errorf("histogram series %s has no le=\"+Inf\" bucket", key)
		}
		if n, ok := counts[key]; !ok {
			t.Errorf("histogram series %s has no _count sample", key)
		} else if n != hs.inf {
			t.Errorf("histogram series %s: _count %d != +Inf bucket %d", key, n, hs.inf)
		}
	}
}
