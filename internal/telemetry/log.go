package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"
	"time"
)

// LogLevel orders log severities. Messages below a logger's minimum level
// are dropped before any formatting work.
type LogLevel int32

// The four levels, in increasing severity.
const (
	LogDebug LogLevel = iota
	LogInfo
	LogWarn
	LogError
)

// String returns the lowercase level name used in the JSON output.
func (l LogLevel) String() string {
	switch l {
	case LogDebug:
		return "debug"
	case LogInfo:
		return "info"
	case LogWarn:
		return "warn"
	case LogError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLogLevel resolves a level name ("debug", "info", "warn", "error").
func ParseLogLevel(s string) (LogLevel, error) {
	switch s {
	case "debug":
		return LogDebug, nil
	case "info":
		return LogInfo, nil
	case "warn", "warning":
		return LogWarn, nil
	case "error":
		return LogError, nil
	default:
		return 0, fmt.Errorf("telemetry: unknown log level %q", s)
	}
}

// Field is one structured key/value pair of a log line.
type Field struct {
	Key   string
	Value any
}

// F is shorthand for constructing a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Logger emits leveled, structured JSON log lines — one JSON object per
// line, machine-parseable with nothing beyond the standard library:
//
//	{"ts":"2026-08-06T12:00:00.000Z","level":"warn","msg":"slow query","route":"/search","ms":412.7}
//
// It is safe for concurrent use. LogEvery rate-samples high-frequency
// messages (per-query fallbacks, cache churn) so the hot path cannot flood
// the output: suppressed occurrences are counted and reported on the next
// emitted line.
type Logger struct {
	mu  sync.Mutex
	out io.Writer
	min atomic.Int32

	samples sync.Map // msg -> *atomic.Uint64, occurrence counters for LogEvery
}

// NewLogger creates a logger writing to w at the given minimum level.
func NewLogger(w io.Writer, min LogLevel) *Logger {
	l := &Logger{out: w}
	l.min.Store(int32(min))
	return l
}

// SetOutput redirects the logger (tests capture output this way).
func (l *Logger) SetOutput(w io.Writer) {
	l.mu.Lock()
	l.out = w
	l.mu.Unlock()
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(min LogLevel) { l.min.Store(int32(min)) }

// Level returns the minimum emitted level.
func (l *Logger) Level() LogLevel { return LogLevel(l.min.Load()) }

// Log emits one line at the given level. Fields appear after "ts", "level"
// and "msg", in argument order; field keys should be plain identifiers.
func (l *Logger) Log(level LogLevel, msg string, fields ...Field) {
	if int32(level) < l.min.Load() {
		return
	}
	l.emit(level, msg, fields)
}

// LogEvery emits the first occurrence of msg and every n-th after that,
// dropping the rest — per-message counting, so one chatty message cannot
// starve another. An emitted line carries "sampled_every" and the count of
// lines suppressed since the last emission. n <= 1 emits every occurrence.
func (l *Logger) LogEvery(n uint64, level LogLevel, msg string, fields ...Field) {
	if int32(level) < l.min.Load() {
		return
	}
	if n <= 1 {
		l.emit(level, msg, fields)
		return
	}
	v, _ := l.samples.LoadOrStore(msg, new(atomic.Uint64))
	c := v.(*atomic.Uint64).Add(1)
	if (c-1)%n != 0 {
		return
	}
	suppressed := n - 1
	if c == 1 {
		suppressed = 0
	}
	fields = append(fields, F("sampled_every", n), F("suppressed", suppressed))
	l.emit(level, msg, fields)
}

func (l *Logger) emit(level LogLevel, msg string, fields []Field) {
	var buf bytes.Buffer
	buf.WriteString(`{"ts":"`)
	buf.WriteString(time.Now().UTC().Format(time.RFC3339Nano))
	buf.WriteString(`","level":"`)
	buf.WriteString(level.String())
	buf.WriteString(`","msg":`)
	writeJSONValue(&buf, msg)
	for _, f := range fields {
		buf.WriteByte(',')
		writeJSONValue(&buf, f.Key)
		buf.WriteByte(':')
		writeJSONValue(&buf, f.Value)
	}
	buf.WriteString("}\n")

	l.mu.Lock()
	if l.out != nil {
		l.out.Write(buf.Bytes())
	}
	l.mu.Unlock()
}

// writeJSONValue marshals v; values that fail to marshal (channels, cycles)
// degrade to their fmt rendering instead of breaking the line's JSON.
func writeJSONValue(buf *bytes.Buffer, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b, _ = json.Marshal(fmt.Sprint(v))
	}
	buf.Write(b)
}

// stdLog is the process-wide logger, stderr at Info, mirroring the default
// registry: the instrumented packages (server, optimizer) have no common
// construction point to thread a logger through.
var stdLog = NewLogger(os.Stderr, LogInfo)

// DefaultLogger returns the process-wide logger.
func DefaultLogger() *Logger { return stdLog }

// Log emits on the process-wide logger.
func Log(level LogLevel, msg string, fields ...Field) { stdLog.Log(level, msg, fields...) }

// LogEvery rate-samples on the process-wide logger.
func LogEvery(n uint64, level LogLevel, msg string, fields ...Field) {
	stdLog.LogEvery(n, level, msg, fields...)
}

// SetLogOutput redirects the process-wide logger.
func SetLogOutput(w io.Writer) { stdLog.SetOutput(w) }

// SetLogLevel changes the process-wide logger's minimum level.
func SetLogLevel(min LogLevel) { stdLog.SetLevel(min) }
