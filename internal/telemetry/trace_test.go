package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAssembly(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(0) // keep everything

	ctx, root := tr.StartSpan(context.Background(), "search")
	root.SetAttr("db", "transactions")
	ctx2, child := tr.StartSpan(ctx, "augment")
	child.SetAttr("strategy", "BATCH")
	_, grand := tr.StartSpan(ctx2, "fetch")
	grand.End()
	child.End()
	root.End()

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("traces = %d, want 1", len(traces))
	}
	got := traces[0]
	if got.Name != "search" || got.Attrs["db"] != "transactions" {
		t.Errorf("root = %+v", got)
	}
	if len(got.Children) != 1 || got.Children[0].Name != "augment" {
		t.Fatalf("children = %+v", got.Children)
	}
	if got.Children[0].Attrs["strategy"] != "BATCH" {
		t.Errorf("child attrs = %v", got.Children[0].Attrs)
	}
	if len(got.Children[0].Children) != 1 || got.Children[0].Children[0].Name != "fetch" {
		t.Errorf("grandchildren = %+v", got.Children[0].Children)
	}
	if got.DurationMS < 0 {
		t.Errorf("duration = %v", got.DurationMS)
	}
}

func TestSlowThresholdFilters(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(10 * time.Millisecond)

	_, fast := tr.StartSpan(context.Background(), "fast")
	fast.End()
	if len(tr.Snapshot()) != 0 {
		t.Error("fast span retained")
	}

	_, slow := tr.StartSpan(context.Background(), "slow")
	time.Sleep(15 * time.Millisecond)
	slow.End()
	traces := tr.Snapshot()
	if len(traces) != 1 || traces[0].Name != "slow" {
		t.Errorf("traces = %+v", traces)
	}
	seen, kept := tr.Stats()
	if seen != 2 || kept != 1 {
		t.Errorf("stats = (%d, %d), want (2, 1)", seen, kept)
	}
}

func TestRingBufferEviction(t *testing.T) {
	tr := NewTracer(3)
	tr.SetSlowThreshold(0)
	for i := 0; i < 5; i++ {
		_, s := tr.StartSpan(context.Background(), string(rune('a'+i)))
		s.End()
	}
	traces := tr.Snapshot()
	if len(traces) != 3 {
		t.Fatalf("ring holds %d, want 3", len(traces))
	}
	// Newest first: e, d, c survive; a and b were evicted.
	want := []string{"e", "d", "c"}
	for i, w := range want {
		if traces[i].Name != w {
			t.Errorf("traces[%d] = %q, want %q", i, traces[i].Name, w)
		}
	}
}

func TestOnlyRootsAreLogged(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(0)
	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	child.End()
	root.End()
	if got := len(tr.Snapshot()); got != 1 {
		t.Errorf("traces = %d, want 1 (children must not be logged separately)", got)
	}
}

func TestNilSpanSafe(t *testing.T) {
	var s *Span
	s.SetAttr("k", "v")
	s.End()
	if s.Duration() != 0 {
		t.Error("nil span duration")
	}
	if got := s.JSON(); got.Name != "" {
		t.Errorf("nil span JSON = %+v", got)
	}
}

func TestDisabledTracing(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)
	tr := NewTracer(8)
	tr.SetSlowThreshold(0)
	ctx, s := tr.StartSpan(context.Background(), "off")
	if s != nil {
		t.Error("disabled StartSpan returned a span")
	}
	if SpanFromContext(ctx) != nil {
		t.Error("disabled StartSpan stored a span in the context")
	}
	s.End()
	if len(tr.Snapshot()) != 0 {
		t.Error("disabled tracer retained a span")
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(0)
	ctx, root := tr.StartSpan(context.Background(), "root")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, c := tr.StartSpan(ctx, "worker")
			c.SetAttr("k", "v")
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	traces := tr.Snapshot()
	if len(traces) != 1 || len(traces[0].Children) != 16 {
		t.Errorf("root children = %d, want 16", len(traces[0].Children))
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	tr := NewTracer(8)
	tr.SetSlowThreshold(0)
	_, s := tr.StartSpan(context.Background(), "once")
	s.End()
	d := s.Duration()
	s.End()
	if s.Duration() != d {
		t.Error("second End changed the duration")
	}
	if seen, _ := tr.Stats(); seen != 1 {
		t.Errorf("root logged %d times", seen)
	}
}

func TestTracerReset(t *testing.T) {
	tr := NewTracer(4)
	tr.SetSlowThreshold(0)
	_, s := tr.StartSpan(context.Background(), "x")
	s.End()
	tr.Reset()
	if len(tr.Snapshot()) != 0 {
		t.Error("reset did not empty the log")
	}
	if seen, kept := tr.Stats(); seen != 0 || kept != 0 {
		t.Errorf("stats after reset = (%d, %d)", seen, kept)
	}
}
