package telemetry

import (
	"context"
	"io"
	"testing"
	"time"
)

// The per-operation budget of the instruments themselves: counters and
// histogram observations are a handful of atomic ops (single-digit
// nanoseconds uncontended), span start/end is two small allocations. The
// <1% end-to-end overhead claim on the augment hot path is benchmarked in
// internal/augment (BenchmarkTelemetryOverhead).

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(3 * time.Millisecond)
	}
}

func BenchmarkHistogramNowSince(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		start := Now()
		h.Since(start)
	}
}

func BenchmarkStartSpanEnd(b *testing.B) {
	tr := NewTracer(DefaultTraceCapacity)
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, s := tr.StartSpan(ctx, "bench")
		s.End()
	}
}

func BenchmarkWritePrometheus(b *testing.B) {
	r := NewRegistry()
	for _, s := range []string{"SEQUENTIAL", "BATCH", "INNER", "OUTER", "OUTER-BATCH", "OUTER-INNER"} {
		h := r.Histogram("bench_seconds", "", nil, L("strategy", s))
		h.Observe(time.Millisecond)
	}
	r.Counter("hits_total", "").Add(100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
