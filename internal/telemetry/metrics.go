package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one metric dimension, e.g. {Key: "strategy", Value: "BATCH"}.
// Series of the same name with different label sets are rendered as one
// Prometheus family under a shared HELP/TYPE header.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing counter, safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n to the counter.
func (c *Counter) Add(n uint64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta (negative deltas decrement).
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// LatencyBuckets is the default histogram bucket layout: upper bounds in
// seconds from 10µs to 10s, roughly three per decade. The embedded stores
// answer in microseconds while simulated WAN round trips take tens of
// milliseconds, so the range covers both ends of the deployment spectrum.
var LatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram. Observations are two atomic
// adds plus a short linear scan over the bucket bounds; no locks, no
// allocation. The final implicit bucket is +Inf.
type Histogram struct {
	bounds   []float64 // upper bounds in seconds, ascending
	counts   []atomic.Uint64
	inf      atomic.Uint64
	count    atomic.Uint64
	sumNanos atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		bounds = append([]float64(nil), bounds...)
		sort.Float64s(bounds)
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds))}
}

// Observe records one duration. A nil histogram is a no-op, so callers that
// resolve handles dynamically need no guard.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil || !enabled.Load() {
		return
	}
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
	secs := d.Seconds()
	for i, b := range h.bounds {
		if secs <= b {
			h.counts[i].Add(1)
			return
		}
	}
	h.inf.Add(1)
}

// Since observes the time elapsed from start, obtained via Now. A zero start
// (instrumentation disabled when the operation began) records nothing, so the
// disabled path never touches the clock.
func (h *Histogram) Since(start time.Time) {
	if h == nil || start.IsZero() {
		return
	}
	h.Observe(time.Since(start))
}

// Now returns the current time, or the zero time when instrumentation is
// disabled. Pair it with Histogram.Since to time an operation:
//
//	start := telemetry.Now()
//	... work ...
//	hist.Since(start)
func Now() time.Time {
	if !enabled.Load() {
		return time.Time{}
	}
	return time.Now()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket that holds it. Observations beyond the last finite bound
// are attributed to that bound, so the estimate is a floor for tail
// quantiles landing in +Inf.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 || q <= 0 || q >= 1 {
		return 0
	}
	target := q * float64(total)
	cum := uint64(0)
	lower := 0.0
	for i, b := range h.bounds {
		in := h.counts[i].Load()
		if float64(cum)+float64(in) >= target {
			frac := 1.0
			if in > 0 {
				frac = (target - float64(cum)) / float64(in)
			}
			return time.Duration((lower + (b-lower)*frac) * float64(time.Second))
		}
		cum += in
		lower = b
	}
	return time.Duration(lower * float64(time.Second))
}

// CountAtMost returns how many observations landed in buckets whose upper
// bound is <= d — the "good events" count for a latency SLO with objective d.
// The answer is quantized to the bucket grid: d is effectively rounded down
// to the nearest bucket bound (off-grid objectives undercount good events,
// which errs toward alerting), so pick objectives on the grid for exact
// accounting.
func (h *Histogram) CountAtMost(d time.Duration) uint64 {
	if h == nil {
		return 0
	}
	secs := d.Seconds()
	var cum uint64
	for i, b := range h.bounds {
		if b > secs {
			break
		}
		cum += h.counts[i].Load()
	}
	return cum
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count uint64        `json:"count"`
	Sum   time.Duration `json:"sum"`
	P50   time.Duration `json:"p50"`
	P95   time.Duration `json:"p95"`
	P99   time.Duration `json:"p99"`
}

// Snapshot captures count, sum and the p50/p95/p99 estimates. Concurrent
// observations may land between the individual atomic reads; the snapshot is
// a monitoring view, not a barrier.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// metric kinds, in Prometheus TYPE vocabulary.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled instance of a family: exactly one of the value
// fields is set.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
	cf     func() uint64
	gf     func() float64
}

// family groups the series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   string
	order  []string // series keys in registration order
	series map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Lookups take a read lock; the returned handles are
// lock-free. The zero Registry is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func labelsKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, l := range labels {
		sb.WriteString(l.Key)
		sb.WriteByte('\xff')
		sb.WriteString(l.Value)
		sb.WriteByte('\xfe')
	}
	return sb.String()
}

// sortLabels returns a copy of labels in key order, the canonical series
// identity (so {a=1,b=2} and {b=2,a=1} are the same series).
func sortLabels(labels []Label) []Label {
	out := append([]Label(nil), labels...)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookup finds or creates the series for (name, labels), enforcing that a
// name keeps one kind for its whole life. build is called under the write
// lock to construct a missing series.
func (r *Registry) lookup(name, help, kind string, labels []Label, build func() *series) *series {
	labels = sortLabels(labels)
	key := labelsKey(labels)

	r.mu.RLock()
	if f, ok := r.families[name]; ok && f.kind == kind {
		if s, ok := f.series[key]; ok {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	s, ok := f.series[key]
	if !ok {
		s = build()
		s.labels = labels
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first use.
// Registering the same series again returns the existing counter; registering
// the name with a different kind panics (a programming error).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, labels, func() *series { return &series{c: &Counter{}} })
	if s.c == nil {
		panic(fmt.Sprintf("telemetry: metric %q is function-backed", name))
	}
	return s.c
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, labels, func() *series { return &series{g: &Gauge{}} })
	if s.g == nil {
		panic(fmt.Sprintf("telemetry: metric %q is function-backed", name))
	}
	return s.g
}

// Histogram returns the histogram for (name, labels), creating it on first
// use with the given bucket upper bounds in seconds (nil selects
// LatencyBuckets). Buckets are fixed at creation; later calls ignore the
// argument and return the existing histogram.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, labels, func() *series { return &series{h: newHistogram(buckets)} })
	return s.h
}

// CounterFunc registers a function-backed counter: fn is called at exposition
// time. Re-registering the same series replaces the function, so components
// recreated across tests keep the export pointing at the live instance.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	s := r.lookup(name, help, kindCounter, labels, func() *series { return &series{} })
	r.mu.Lock()
	s.c, s.cf = nil, fn
	r.mu.Unlock()
}

// GaugeFunc registers a function-backed gauge, with CounterFunc's semantics.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, kindGauge, labels, func() *series { return &series{} })
	r.mu.Lock()
	s.g, s.gf = nil, fn
	r.mu.Unlock()
}

// CounterValue reads the current value of a counter series, or 0 if it does
// not exist. Intended for stats endpoints and tests.
func (r *Registry) CounterValue(name string, labels ...Label) uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok {
		return 0
	}
	s, ok := f.series[labelsKey(sortLabels(labels))]
	if !ok {
		return 0
	}
	switch {
	case s.c != nil:
		return s.c.Value()
	case s.cf != nil:
		return s.cf()
	}
	return 0
}

// FindHistogram returns a registered histogram series, or nil.
func (r *Registry) FindHistogram(name string, labels ...Label) *Histogram {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.families[name]
	if !ok {
		return nil
	}
	s, ok := f.series[labelsKey(sortLabels(labels))]
	if !ok {
		return nil
	}
	return s.h
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// renderLabels renders {k="v",...}; extra appends one more pair (used for
// the histogram "le" label). Returns "" for an empty set.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every family in the text exposition format
// (version 0.0.4), families in registration order, series in registration
// order within a family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.order {
		f := r.families[name]
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.order {
			s := f.series[key]
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch {
	case s.c != nil || s.cf != nil:
		v := uint64(0)
		if s.c != nil {
			v = s.c.Value()
		} else {
			v = s.cf()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), v)
		return err
	case s.g != nil || s.gf != nil:
		v := 0.0
		if s.g != nil {
			v = float64(s.g.Value())
		} else {
			v = s.gf()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(v))
		return err
	case s.h != nil:
		h := s.h
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			le := formatFloat(b)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, L("le", le)), cum); err != nil {
				return err
			}
		}
		total := cum + h.inf.Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(s.labels, L("le", "+Inf")), total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(s.labels), formatFloat(h.Sum().Seconds())); err != nil {
			return err
		}
		// _count is rendered from the bucket sums rather than the count
		// atomic, so the exposition is internally consistent even when
		// observations land between the reads.
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(s.labels), total)
		return err
	}
	return nil
}
