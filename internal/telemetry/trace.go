package telemetry

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Flag marks a condition observed somewhere inside a trace. Flags are OR'd
// onto the *root* span of the local segment, so tail-based sampling can keep
// every trace that saw an error, a retry, an open breaker, or a degraded
// answer regardless of how fast it finished.
type Flag uint32

const (
	// FlagError: some span in the trace observed an error.
	FlagError Flag = 1 << iota
	// FlagRetry: a resilience retry attempt ran inside the trace.
	FlagRetry
	// FlagBreaker: a circuit breaker was open or half-open on the path.
	FlagBreaker
	// FlagDegraded: the answer was served degraded (store contribution dropped).
	FlagDegraded
)

// flagNames renders a flag set for trace JSON, in bit order.
var flagNames = []struct {
	f    Flag
	name string
}{
	{FlagError, "error"},
	{FlagRetry, "retry"},
	{FlagBreaker, "breaker"},
	{FlagDegraded, "degraded"},
}

// Link is a causal reference to a span that is not an ancestor — e.g. a
// coalesced follower linking to the leader fetch it piggybacked on.
type Link struct {
	Trace TraceID
	Span  SpanID
}

// Span is one timed operation in a trace tree. Spans are created with
// StartSpan, which threads them through the context so nested operations
// attach as children automatically. A nil *Span is valid: every method is a
// no-op, which is how disabled instrumentation propagates without branches at
// the call sites.
type Span struct {
	name   string
	start  time.Time
	parent *Span
	tracer *Tracer
	root   *Span // the local segment root (self for roots); never nil on a real span

	traceID  TraceID
	id       SpanID
	parentID SpanID // remote parent span ID on continued segments (parent == nil)
	remote   bool   // true when this root continues a trace started elsewhere

	flags     atomic.Uint32 // root only; Mark ORs into root.flags
	bytesSent atomic.Int64
	bytesRecv atomic.Int64

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Label
	children []*Span
	links    []Link
}

// spanKey is the context key under which the active span travels.
type spanKey struct{}

// StartSpan opens a span named name under the span carried by ctx (if any)
// and returns a derived context carrying the new span. When instrumentation
// is disabled it returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return DefaultTracer().StartSpan(ctx, name)
}

// StartRemoteSpan opens a root span continuing the trace described by a
// traceparent value received from a remote peer: the new span keeps the
// remote trace ID and records the remote caller's span ID as its parent, so
// the two process-local segments join into one tree. A malformed or empty
// traceparent degrades to a plain root span. See the package-level StartSpan.
func StartRemoteSpan(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	return DefaultTracer().StartRemoteSpan(ctx, name, traceparent)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.mu.Unlock()
}

// Mark ORs a condition flag onto the span's local root, where the tracer's
// tail-sampling decision reads it.
func (s *Span) Mark(f Flag) {
	if s == nil {
		return
	}
	r := s.root
	for {
		old := r.flags.Load()
		if old&uint32(f) == uint32(f) || r.flags.CompareAndSwap(old, old|uint32(f)) {
			return
		}
	}
}

// Flags returns the condition flags accumulated on the span's local root.
func (s *Span) Flags() Flag {
	if s == nil {
		return 0
	}
	return Flag(s.root.flags.Load())
}

// AddLink records a causal reference to another span (same or different
// trace) that is not an ancestor of s.
func (s *Span) AddLink(trace TraceID, span SpanID) {
	if s == nil || trace.IsZero() || span == 0 {
		return
	}
	s.mu.Lock()
	s.links = append(s.links, Link{Trace: trace, Span: span})
	s.mu.Unlock()
}

// AddBytes accumulates wire bytes attributed to this span (one hop's frame
// sizes). Safe for concurrent use.
func (s *Span) AddBytes(sent, received int64) {
	if s == nil {
		return
	}
	if sent != 0 {
		s.bytesSent.Add(sent)
	}
	if received != 0 {
		s.bytesRecv.Add(received)
	}
}

// TraceID returns the span's 128-bit trace ID (zero for nil spans).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// SpanID returns the span's 64-bit span ID (zero for nil spans).
func (s *Span) SpanID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// TraceParent renders the traceparent value a remote peer should continue
// from ("" for nil spans) — carried on wire request frames.
func (s *Span) TraceParent() string {
	if s == nil {
		return ""
	}
	return FormatTraceParent(s.traceID, s.id)
}

// End closes the span, recording its duration. Ending a root span hands the
// finished tree to the tracer, which applies the tail-sampling policy. End is
// idempotent; ending a child after its root was ended is harmless (the late
// duration is recorded but the tree was already snapshotted).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	d := s.dur
	s.mu.Unlock()
	if s.parent == nil && s.tracer != nil {
		s.tracer.finishRoot(s, d)
	}
}

// Duration returns the span's recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// LinkJSON is the JSON rendering of a span link.
type LinkJSON struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
}

// SpanJSON is the JSON rendering of a finished span tree, served by the
// server's /debug/traces endpoint and the JSONL trace log.
type SpanJSON struct {
	Name         string            `json:"name"`
	TraceID      string            `json:"trace_id,omitempty"`
	SpanID       string            `json:"span_id,omitempty"`
	ParentSpanID string            `json:"parent_span_id,omitempty"`
	Start        time.Time         `json:"start"`
	DurationMS   float64           `json:"duration_ms"`
	Flags        []string          `json:"flags,omitempty"`
	BytesSent    int64             `json:"bytes_sent,omitempty"`
	BytesRecv    int64             `json:"bytes_recv,omitempty"`
	Attrs        map[string]string `json:"attrs,omitempty"`
	Links        []LinkJSON        `json:"links,omitempty"`
	Children     []SpanJSON        `json:"children,omitempty"`
}

// JSON renders the span tree rooted at s.
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	out := SpanJSON{
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(s.dur.Nanoseconds()) / 1e6,
	}
	if !s.traceID.IsZero() {
		out.TraceID = s.traceID.String()
	}
	if s.id != 0 {
		out.SpanID = s.id.String()
	}
	switch {
	case s.parent != nil:
		out.ParentSpanID = s.parent.id.String()
	case s.parentID != 0:
		out.ParentSpanID = s.parentID.String()
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, l := range s.links {
		out.Links = append(out.Links, LinkJSON{TraceID: l.Trace.String(), SpanID: l.Span.String()})
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	if s.parent == nil {
		fl := Flag(s.flags.Load())
		for _, fn := range flagNames {
			if fl&fn.f != 0 {
				out.Flags = append(out.Flags, fn.name)
			}
		}
	}
	out.BytesSent = s.bytesSent.Load()
	out.BytesRecv = s.bytesRecv.Load()
	for _, c := range children {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// Exporter receives every trace the tail sampler keeps, already rendered to
// JSON. Implementations must be safe for concurrent use; TraceLog is the
// in-tree JSONL exporter.
type Exporter interface {
	ExportTrace(root SpanJSON)
}

// DefaultSlowThreshold is the initial slow-query threshold of a tracer.
const DefaultSlowThreshold = 250 * time.Millisecond

// DefaultTraceCapacity is the ring capacity of a tracer's kept-trace log.
const DefaultTraceCapacity = 128

// DefaultSampleRate is the probabilistic keep rate the server applies to
// fast, unflagged traces (-trace-sample). Tracers themselves default to 0 so
// existing tests and embedders see only the slow/flagged policy.
const DefaultSampleRate = 0.01

// pendingCapacity bounds the buffer of recently finished, not-yet-kept local
// roots: when a later segment of the same trace is kept (slow client root
// arriving after a fast server segment, say), the buffered segments are swept
// into the kept set so the exported trace is whole.
const pendingCapacity = 256

// recentKeptCapacity bounds the set of recently kept trace IDs used to sweep
// in segments that finish *after* the keep decision.
const recentKeptCapacity = 128

// Tracer owns the kept-trace log. Finished root spans pass a tail-based
// sampling decision: slow roots (duration ≥ threshold), flagged roots
// (error/retry/breaker/degraded), roots of traces kept moments ago, and a
// deterministic trace-ID-hash sample of the rest are retained in a fixed-size
// ring (newest evicting oldest) and handed to the exporter, if any.
type Tracer struct {
	slowNanos  atomic.Int64
	sampleBits atomic.Uint64 // math.Float64bits of the sample rate

	mu   sync.Mutex
	ring []*Span
	next int

	seen        uint64 // total roots observed
	kept        uint64 // roots retained
	keptSlow    uint64 // … because duration crossed the threshold
	keptFlagged uint64 // … because a condition flag was set
	keptSampled uint64 // … by the probabilistic sampler
	keptSwept   uint64 // … because another segment of the trace was kept

	pending     []*Span // bounded ring of recent non-kept roots
	pendingNext int
	recent      []TraceID // bounded ring of recently kept trace IDs
	recentNext  int

	exporter Exporter
}

// NewTracer creates a tracer with the given ring capacity (<= 0 selects
// DefaultTraceCapacity), DefaultSlowThreshold, and sampling rate 0.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{ring: make([]*Span, 0, capacity)}
	t.slowNanos.Store(int64(DefaultSlowThreshold))
	return t
}

var defaultTracer = NewTracer(DefaultTraceCapacity)

// DefaultTracer returns the process-wide tracer used by StartSpan.
func DefaultTracer() *Tracer { return defaultTracer }

// SetSlowThreshold changes the duration above which a finished root span is
// kept. Zero or negative keeps every root span.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNanos.Store(int64(d)) }

// SlowThreshold returns the current slow-query threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNanos.Load()) }

// SetSampleRate sets the probabilistic keep rate in [0,1] for fast, unflagged
// traces. The decision hashes the trace ID, so every process tracing the same
// trace reaches the same verdict and sampled trees stay whole.
func (t *Tracer) SetSampleRate(rate float64) {
	if rate < 0 || math.IsNaN(rate) {
		rate = 0
	}
	if rate > 1 {
		rate = 1
	}
	t.sampleBits.Store(math.Float64bits(rate))
}

// SampleRate returns the current probabilistic keep rate.
func (t *Tracer) SampleRate() float64 { return math.Float64frombits(t.sampleBits.Load()) }

// SetExporter installs the sink that receives every kept trace (nil
// disables export). Kept traces are rendered to JSON outside the tracer lock.
func (t *Tracer) SetExporter(e Exporter) {
	t.mu.Lock()
	t.exporter = e
	t.mu.Unlock()
}

// StartSpan opens a span on this tracer; see the package-level StartSpan.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now(), tracer: t, id: NewSpanID()}
	if parent := SpanFromContext(ctx); parent != nil {
		s.parent = parent
		s.root = parent.root
		s.traceID = parent.root.traceID
		parent.addChild(s)
	} else {
		s.root = s
		s.traceID = NewTraceID()
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartRemoteSpan opens a root span continuing a remote trace; see the
// package-level StartRemoteSpan.
func (t *Tracer) StartRemoteSpan(ctx context.Context, name, traceparent string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	trace, parent, ok := ParseTraceParent(traceparent)
	ctx, s := t.StartSpan(ctx, name)
	if ok && s != nil && s.parent == nil {
		s.traceID = trace
		s.parentID = parent
		s.remote = true
	}
	return ctx, s
}

// sampleTrace is the deterministic probabilistic decision: hash the low
// trace-ID word into [0,1) and keep when below the rate. Every segment of a
// trace draws the same verdict on every process.
func sampleTrace(id TraceID, rate float64) bool {
	if rate <= 0 {
		return false
	}
	if rate >= 1 {
		return true
	}
	// The ID words are splitmix64 outputs, already uniform; fold both words
	// so seeded low-entropy IDs still spread.
	x := id.Lo ^ (id.Hi * 0x9e3779b97f4a7c15)
	return float64(x>>11)/(1<<53) < rate
}

func (t *Tracer) finishRoot(s *Span, d time.Duration) {
	var export []*Span
	t.mu.Lock()
	t.seen++
	keep := false
	switch {
	case Flag(s.flags.Load()) != 0:
		keep = true
		t.keptFlagged++
	case d >= time.Duration(t.slowNanos.Load()):
		keep = true
		t.keptSlow++
	case t.traceRecentlyKeptLocked(s.traceID):
		keep = true
		t.keptSwept++
	case sampleTrace(s.traceID, t.SampleRate()):
		keep = true
		t.keptSampled++
	}
	if !keep {
		// Buffer briefly: a sibling segment of this trace may yet be kept.
		if cap(t.pending) == 0 {
			t.pending = make([]*Span, 0, pendingCapacity)
		}
		if len(t.pending) < cap(t.pending) {
			t.pending = append(t.pending, s)
		} else {
			t.pending[t.pendingNext] = s
			t.pendingNext = (t.pendingNext + 1) % cap(t.pending)
		}
		t.mu.Unlock()
		return
	}
	t.noteKeptLocked(s.traceID)
	t.insertLocked(s)
	export = append(export, s)
	// Sweep earlier segments of the same trace out of the pending buffer.
	for i := 0; i < len(t.pending); i++ {
		p := t.pending[i]
		if p == nil || p.traceID != s.traceID {
			continue
		}
		t.pending[i] = nil
		t.kept++
		t.keptSwept++
		t.insertLocked(p)
		export = append(export, p)
	}
	t.kept++
	e := t.exporter
	t.mu.Unlock()
	if e != nil {
		for _, sp := range export {
			e.ExportTrace(sp.JSON())
		}
	}
}

func (t *Tracer) insertLocked(s *Span) {
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % cap(t.ring)
}

func (t *Tracer) traceRecentlyKeptLocked(id TraceID) bool {
	if id.IsZero() {
		return false
	}
	for _, r := range t.recent {
		if r == id {
			return true
		}
	}
	return false
}

func (t *Tracer) noteKeptLocked(id TraceID) {
	if id.IsZero() || t.traceRecentlyKeptLocked(id) {
		return
	}
	if cap(t.recent) == 0 {
		t.recent = make([]TraceID, 0, recentKeptCapacity)
	}
	if len(t.recent) < cap(t.recent) {
		t.recent = append(t.recent, id)
		return
	}
	t.recent[t.recentNext] = id
	t.recentNext = (t.recentNext + 1) % cap(t.recent)
}

// Stats reports how many root spans the tracer has seen and how many were
// retained.
func (t *Tracer) Stats() (seen, kept uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen, t.kept
}

// SamplingStats breaks the tail-sampling decisions down by reason.
type SamplingStats struct {
	Seen        uint64  `json:"seen"`
	Kept        uint64  `json:"kept"`
	KeptSlow    uint64  `json:"kept_slow"`
	KeptFlagged uint64  `json:"kept_flagged"`
	KeptSampled uint64  `json:"kept_sampled"`
	KeptSwept   uint64  `json:"kept_swept"`
	SampleRate  float64 `json:"sample_rate"`
}

// SamplingStats returns the tail-sampling decision counters.
func (t *Tracer) SamplingStats() SamplingStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return SamplingStats{
		Seen:        t.seen,
		Kept:        t.kept,
		KeptSlow:    t.keptSlow,
		KeptFlagged: t.keptFlagged,
		KeptSampled: t.keptSampled,
		KeptSwept:   t.keptSwept,
		SampleRate:  t.SampleRate(),
	}
}

// Snapshot returns the retained traces, newest first.
func (t *Tracer) Snapshot() []SpanJSON {
	t.mu.Lock()
	spans := make([]*Span, 0, len(t.ring))
	// The ring's oldest entry sits at next once it has wrapped.
	for i := 0; i < len(t.ring); i++ {
		spans = append(spans, t.ring[(t.next+i)%len(t.ring)])
	}
	t.mu.Unlock()
	out := make([]SpanJSON, 0, len(spans))
	for i := len(spans) - 1; i >= 0; i-- {
		out = append(out, spans[i].JSON())
	}
	return out
}

// Reset empties the kept-trace log, the pending buffer, and the counters.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
	t.pending = t.pending[:0]
	t.pendingNext = 0
	t.recent = t.recent[:0]
	t.recentNext = 0
	t.seen, t.kept = 0, 0
	t.keptSlow, t.keptFlagged, t.keptSampled, t.keptSwept = 0, 0, 0, 0
}
