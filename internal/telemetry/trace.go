package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one timed operation in a trace tree. Spans are created with
// StartSpan, which threads them through the context so nested operations
// attach as children automatically. A nil *Span is valid: every method is a
// no-op, which is how disabled instrumentation propagates without branches at
// the call sites.
type Span struct {
	name   string
	start  time.Time
	parent *Span
	tracer *Tracer

	mu       sync.Mutex
	dur      time.Duration
	ended    bool
	attrs    []Label
	children []*Span
}

// spanKey is the context key under which the active span travels.
type spanKey struct{}

// StartSpan opens a span named name under the span carried by ctx (if any)
// and returns a derived context carrying the new span. When instrumentation
// is disabled it returns ctx unchanged and a nil span.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return DefaultTracer().StartSpan(ctx, name)
}

// SpanFromContext returns the span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey{}).(*Span)
	return s
}

// SetAttr attaches a key/value annotation to the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{Key: key, Value: value})
	s.mu.Unlock()
}

// End closes the span, recording its duration. Ending a root span hands the
// finished tree to the tracer, which keeps it when the total duration crosses
// the slow threshold. End is idempotent; ending a child after its root was
// ended is harmless (the late duration is recorded but the tree was already
// snapshotted).
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.dur = time.Since(s.start)
	d := s.dur
	s.mu.Unlock()
	if s.parent == nil && s.tracer != nil {
		s.tracer.finishRoot(s, d)
	}
}

// Duration returns the span's recorded duration (zero until End).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dur
}

func (s *Span) addChild(c *Span) {
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
}

// SpanJSON is the JSON rendering of a finished span tree, served by the
// server's /debug/traces endpoint.
type SpanJSON struct {
	Name       string            `json:"name"`
	Start      time.Time         `json:"start"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []SpanJSON        `json:"children,omitempty"`
}

// JSON renders the span tree rooted at s.
func (s *Span) JSON() SpanJSON {
	if s == nil {
		return SpanJSON{}
	}
	s.mu.Lock()
	out := SpanJSON{
		Name:       s.name,
		Start:      s.start,
		DurationMS: float64(s.dur.Nanoseconds()) / 1e6,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		out.Children = append(out.Children, c.JSON())
	}
	return out
}

// DefaultSlowThreshold is the initial slow-query threshold of a tracer.
const DefaultSlowThreshold = 250 * time.Millisecond

// DefaultTraceCapacity is the ring capacity of a tracer's slow-query log.
const DefaultTraceCapacity = 128

// Tracer owns the slow-query log: finished root spans whose duration crosses
// the threshold are kept in a fixed-size ring buffer, newest evicting oldest.
type Tracer struct {
	slowNanos atomic.Int64

	mu   sync.Mutex
	ring []*Span
	next int
	seen uint64 // total roots observed (including fast ones)
	kept uint64 // roots retained as slow
}

// NewTracer creates a tracer with the given ring capacity (<= 0 selects
// DefaultTraceCapacity) and DefaultSlowThreshold.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	t := &Tracer{ring: make([]*Span, 0, capacity)}
	t.slowNanos.Store(int64(DefaultSlowThreshold))
	return t
}

var defaultTracer = NewTracer(DefaultTraceCapacity)

// DefaultTracer returns the process-wide tracer used by StartSpan.
func DefaultTracer() *Tracer { return defaultTracer }

// SetSlowThreshold changes the duration above which a finished root span is
// kept in the slow-query log. Zero or negative keeps every root span.
func (t *Tracer) SetSlowThreshold(d time.Duration) { t.slowNanos.Store(int64(d)) }

// SlowThreshold returns the current slow-query threshold.
func (t *Tracer) SlowThreshold() time.Duration { return time.Duration(t.slowNanos.Load()) }

// StartSpan opens a span on this tracer; see the package-level StartSpan.
func (t *Tracer) StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	if !enabled.Load() {
		return ctx, nil
	}
	s := &Span{name: name, start: time.Now(), tracer: t}
	if parent := SpanFromContext(ctx); parent != nil {
		s.parent = parent
		parent.addChild(s)
	}
	return context.WithValue(ctx, spanKey{}, s), s
}

func (t *Tracer) finishRoot(s *Span, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seen++
	if d < time.Duration(t.slowNanos.Load()) {
		return
	}
	t.kept++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, s)
		return
	}
	t.ring[t.next] = s
	t.next = (t.next + 1) % cap(t.ring)
}

// Stats reports how many root spans the tracer has seen and how many were
// retained as slow.
func (t *Tracer) Stats() (seen, kept uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seen, t.kept
}

// Snapshot returns the retained slow traces, newest first.
func (t *Tracer) Snapshot() []SpanJSON {
	t.mu.Lock()
	spans := make([]*Span, 0, len(t.ring))
	// The ring's oldest entry sits at next once it has wrapped.
	for i := 0; i < len(t.ring); i++ {
		spans = append(spans, t.ring[(t.next+i)%len(t.ring)])
	}
	t.mu.Unlock()
	out := make([]SpanJSON, 0, len(spans))
	for i := len(spans) - 1; i >= 0; i-- {
		out = append(out, spans[i].JSON())
	}
	return out
}

// Reset empties the slow-query log and zeroes the counters.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.ring = t.ring[:0]
	t.next = 0
	t.seen, t.kept = 0, 0
}
