package telemetry

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSeededIDsDeterministic(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)

	SeedTraceIDs(42)
	a1, s1 := NewTraceID(), NewSpanID()
	SeedTraceIDs(42)
	a2, s2 := NewTraceID(), NewSpanID()
	if a1 != a2 || s1 != s2 {
		t.Fatalf("reseed did not replay: %v/%v vs %v/%v", a1, s1, a2, s2)
	}
	if a1.IsZero() || s1 == 0 {
		t.Fatalf("zero IDs drawn: %v %v", a1, s1)
	}
	SeedTraceIDs(43)
	if b := NewTraceID(); b == a1 {
		t.Fatalf("different seeds produced the same trace ID %v", b)
	}
}

func TestTraceParentRoundTrip(t *testing.T) {
	trace := TraceID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	span := SpanID(0xdeadbeefcafef00d)
	tp := FormatTraceParent(trace, span)
	if tp != "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01" {
		t.Fatalf("traceparent = %q", tp)
	}
	gotTrace, gotSpan, ok := ParseTraceParent(tp)
	if !ok || gotTrace != trace || gotSpan != span {
		t.Fatalf("round trip = %v %v %v", gotTrace, gotSpan, ok)
	}
	for _, bad := range []string{
		"", "00", "00-short-deadbeefcafef00d-01",
		"00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-",
		"00-00000000000000000000000000000000-deadbeefcafef00d-01", // zero trace
		"00-0123456789abcdeffedcba9876543210-0000000000000000-01", // zero span
		"00-0123456789abcdeffedcba987654321X-deadbeefcafef00d-01", // bad hex
	} {
		if _, _, ok := ParseTraceParent(bad); ok {
			t.Errorf("ParseTraceParent(%q) accepted", bad)
		}
	}
}

func TestSpanIdentityPropagation(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	SeedTraceIDs(7)
	tr := NewTracer(8)
	tr.SetSlowThreshold(0)

	ctx, root := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	if child.TraceID() != root.TraceID() {
		t.Fatalf("child trace %v != root trace %v", child.TraceID(), root.TraceID())
	}
	if child.SpanID() == root.SpanID() || child.SpanID() == 0 {
		t.Fatalf("span IDs not distinct: %v vs %v", child.SpanID(), root.SpanID())
	}
	child.End()
	root.End()
	got := tr.Snapshot()[0]
	if got.TraceID != root.TraceID().String() || got.SpanID != root.SpanID().String() {
		t.Errorf("root JSON identity = %q/%q", got.TraceID, got.SpanID)
	}
	if got.Children[0].ParentSpanID != root.SpanID().String() {
		t.Errorf("child parent_span_id = %q, want %q", got.Children[0].ParentSpanID, root.SpanID())
	}
}

func TestRemoteSpanContinuesTrace(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	SeedTraceIDs(7)
	tr := NewTracer(8)
	tr.SetSlowThreshold(0)

	_, client := tr.StartSpan(context.Background(), "client")
	tp := client.TraceParent()
	_, server := tr.StartRemoteSpan(context.Background(), "server", tp)
	if server.TraceID() != client.TraceID() {
		t.Fatalf("server segment trace %v != client %v", server.TraceID(), client.TraceID())
	}
	server.End()
	client.End()
	var seg SpanJSON
	for _, s := range tr.Snapshot() {
		if s.Name == "server" {
			seg = s
		}
	}
	if seg.ParentSpanID != client.SpanID().String() {
		t.Errorf("server segment parent = %q, want client span %q", seg.ParentSpanID, client.SpanID())
	}

	// Malformed traceparent degrades to a fresh root trace.
	_, orphan := tr.StartRemoteSpan(context.Background(), "orphan", "garbage")
	if orphan.TraceID() == client.TraceID() || orphan.TraceID().IsZero() {
		t.Errorf("orphan trace = %v", orphan.TraceID())
	}
	orphan.End()
}

func TestFlagsKeepFastTraces(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	tr := NewTracer(8)
	tr.SetSlowThreshold(time.Hour) // nothing is slow

	ctx, root := tr.StartSpan(context.Background(), "degraded-req")
	_, child := tr.StartSpan(ctx, "fetch")
	child.Mark(FlagBreaker) // marks propagate to the root
	child.End()
	root.End()

	traces := tr.Snapshot()
	if len(traces) != 1 {
		t.Fatalf("flagged fast trace not kept: %d", len(traces))
	}
	if len(traces[0].Flags) != 1 || traces[0].Flags[0] != "breaker" {
		t.Errorf("flags = %v", traces[0].Flags)
	}
	st := tr.SamplingStats()
	if st.KeptFlagged != 1 || st.KeptSlow != 0 {
		t.Errorf("stats = %+v", st)
	}

	_, plain := tr.StartSpan(context.Background(), "plain")
	plain.End()
	if seen, kept := tr.Stats(); seen != 2 || kept != 1 {
		t.Errorf("seen/kept = %d/%d", seen, kept)
	}
}

func TestTailSamplingSweepsSiblingSegments(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	SeedTraceIDs(11)
	tr := NewTracer(8)
	tr.SetSlowThreshold(time.Hour)

	// A fast remote segment finishes first and is buffered, not kept.
	_, client := tr.StartSpan(context.Background(), "client")
	_, seg := tr.StartRemoteSpan(context.Background(), "server-seg", client.TraceParent())
	seg.End()
	if _, kept := tr.Stats(); kept != 0 {
		t.Fatalf("fast segment kept prematurely")
	}
	// The client root is flagged, so it is kept — and must pull the buffered
	// sibling segment of the same trace in with it.
	client.Mark(FlagError)
	client.End()
	if _, kept := tr.Stats(); kept != 2 {
		t.Fatalf("kept = %d, want 2 (root + swept segment)", kept)
	}
	// A late-finishing segment of an already-kept trace is kept as well.
	_, late := tr.StartRemoteSpan(context.Background(), "late-seg", client.TraceParent())
	late.End()
	if _, kept := tr.Stats(); kept != 3 {
		t.Fatalf("kept = %d, want 3 after late segment", kept)
	}
	if st := tr.SamplingStats(); st.KeptSwept != 2 {
		t.Errorf("swept = %d, want 2", st.KeptSwept)
	}
}

func TestProbabilisticSamplingDeterministic(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	SeedTraceIDs(13)
	tr := NewTracer(2048)
	tr.SetSlowThreshold(time.Hour)
	tr.SetSampleRate(0.1)

	const n = 2000
	for i := 0; i < n; i++ {
		_, s := tr.StartSpan(context.Background(), "req")
		s.End()
	}
	st := tr.SamplingStats()
	if st.KeptSampled == 0 || st.KeptSampled > n/2 {
		t.Fatalf("sampled %d of %d at rate 0.1", st.KeptSampled, n)
	}
	// Same seed ⇒ identical decisions.
	SeedTraceIDs(13)
	tr2 := NewTracer(2048)
	tr2.SetSlowThreshold(time.Hour)
	tr2.SetSampleRate(0.1)
	for i := 0; i < n; i++ {
		_, s := tr2.StartSpan(context.Background(), "req")
		s.End()
	}
	if got := tr2.SamplingStats(); got.KeptSampled != st.KeptSampled {
		t.Fatalf("replay sampled %d, want %d", got.KeptSampled, st.KeptSampled)
	}
	// Rate 0 keeps nothing probabilistically.
	tr3 := NewTracer(8)
	tr3.SetSlowThreshold(time.Hour)
	for i := 0; i < 100; i++ {
		_, s := tr3.StartSpan(context.Background(), "req")
		s.End()
	}
	if got := tr3.SamplingStats(); got.KeptSampled != 0 {
		t.Fatalf("rate 0 sampled %d", got.KeptSampled)
	}
}

func TestSpanBytesAndLinks(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	tr := NewTracer(8)
	tr.SetSlowThreshold(0)

	_, leader := tr.StartSpan(context.Background(), "leader")
	_, follower := tr.StartSpan(context.Background(), "follower")
	follower.AddLink(leader.TraceID(), leader.SpanID())
	follower.AddBytes(120, 4096)
	follower.AddBytes(10, 0)
	follower.End()
	leader.End()

	var got SpanJSON
	for _, s := range tr.Snapshot() {
		if s.Name == "follower" {
			got = s
		}
	}
	if got.BytesSent != 130 || got.BytesRecv != 4096 {
		t.Errorf("bytes = %d/%d", got.BytesSent, got.BytesRecv)
	}
	if len(got.Links) != 1 || got.Links[0].SpanID != leader.SpanID().String() ||
		got.Links[0].TraceID != leader.TraceID().String() {
		t.Errorf("links = %+v", got.Links)
	}
}

func TestTraceLogExportAndRotation(t *testing.T) {
	prev := SetEnabled(true)
	defer SetEnabled(prev)
	dir := t.TempDir()
	path := filepath.Join(dir, "traces.jsonl")
	tl, err := NewTraceLog(path, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()

	tr := NewTracer(8)
	tr.SetSlowThreshold(0)
	tr.SetExporter(tl)
	for i := 0; i < 64; i++ {
		ctx, root := tr.StartSpan(context.Background(), "export-me")
		_, c := tr.StartSpan(ctx, "child")
		c.End()
		root.End()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	var root SpanJSON
	if err := json.Unmarshal([]byte(lines[0]), &root); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if root.Name != "export-me" || root.TraceID == "" || len(root.Children) != 1 {
		t.Errorf("exported root = %+v", root)
	}
	// 64 multi-line traces overflow 2 KiB: the rotation file must exist and
	// the live file must be under budget.
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("no rotation file: %v", err)
	}
	if st, _ := os.Stat(path); st.Size() > 2048 {
		t.Errorf("live file %d bytes exceeds budget", st.Size())
	}
	if tl.Dropped() != 0 {
		t.Errorf("dropped = %d", tl.Dropped())
	}
}
