// Package telemetry is the observability layer of the reproduction: an
// atomic-based metrics registry (counters, gauges and fixed-bucket latency
// histograms with p50/p95/p99 snapshots) plus a lightweight, context-propagated
// span tracer with a ring-buffered slow-query log.
//
// The package is stdlib-only and designed for hot-path use: recording a
// counter or a histogram observation is a handful of atomic operations and
// never allocates; metric handles are meant to be resolved once (package
// var or struct field) and hammered forever. The exposition side speaks the
// Prometheus text format (WritePrometheus), so a stock Prometheus scraper
// can consume a quepa-server without any third-party client library.
//
// Everything funnels through a process-wide default registry and tracer
// (Default, the New* helpers, StartSpan) because the instrumented packages —
// stores, cache, index, augmenters, wire — have no common construction point
// to thread a registry through. A global kill switch (SetEnabled) turns every
// instrument into a no-op so benchmarks can measure the uninstrumented
// baseline in the same binary.
package telemetry

import "sync/atomic"

// enabled is the global kill switch. It defaults to on; SetEnabled(false)
// turns every counter increment, histogram observation and span start into a
// cheap early return.
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled flips the global instrumentation switch and reports the previous
// state. Benchmarks use it to measure the uninstrumented hot path.
func SetEnabled(on bool) bool { return enabled.Swap(on) }

// Enabled reports whether instrumentation is currently recording.
func Enabled() bool { return enabled.Load() }

// std is the process-wide registry every instrumented package records into.
var std = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return std }

// NewCounter returns the named counter from the default registry, creating it
// on first use (the expvar.NewInt idiom).
func NewCounter(name, help string, labels ...Label) *Counter {
	return std.Counter(name, help, labels...)
}

// NewGauge returns the named gauge from the default registry.
func NewGauge(name, help string, labels ...Label) *Gauge {
	return std.Gauge(name, help, labels...)
}

// NewHistogram returns the named histogram from the default registry. A nil
// bucket slice selects LatencyBuckets.
func NewHistogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	return std.Histogram(name, help, buckets, labels...)
}

// NewCounterFunc registers a function-backed counter on the default registry:
// the value is read at exposition time, so components that already maintain a
// cumulative count (e.g. the cache's hit/miss tally) are exported with zero
// extra hot-path cost. Re-registering the same series replaces the function.
func NewCounterFunc(name, help string, fn func() uint64, labels ...Label) {
	std.CounterFunc(name, help, fn, labels...)
}

// NewGaugeFunc registers a function-backed gauge on the default registry.
func NewGaugeFunc(name, help string, fn func() float64, labels ...Label) {
	std.GaugeFunc(name, help, fn, labels...)
}
