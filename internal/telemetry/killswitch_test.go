package telemetry

import (
	"context"
	"testing"
	"time"
)

// TestKillSwitchRecordsNothing verifies that with telemetry disabled every
// instrument is inert: nothing is counted, timed, or traced.
func TestKillSwitchRecordsNothing(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)

	r := NewRegistry()
	c := r.Counter("off_counter", "")
	g := r.Gauge("off_gauge", "")
	h := r.Histogram("off_hist", "", nil)
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(500 * time.Microsecond)
	if v := r.CounterValue("off_counter"); v != 0 {
		t.Errorf("counter = %d", v)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %v", got)
	}
	if n := h.Count(); n != 0 {
		t.Errorf("histogram count = %d", n)
	}

	if !Now().IsZero() {
		t.Error("Now() read the clock while disabled")
	}

	tr := NewTracer(8)
	ctx, span := tr.StartSpan(context.Background(), "root")
	_, child := tr.StartSpan(ctx, "child")
	child.End()
	span.End()
	if got := tr.Snapshot(); len(got) != 0 {
		t.Errorf("tracer kept %d spans", len(got))
	}

	// Trace identity is inert too: no IDs minted, no traceparent rendered,
	// and a remote continuation carrying a valid traceparent records nothing.
	if tp := span.TraceParent(); tp != "" {
		t.Errorf("disabled span rendered traceparent %q", tp)
	}
	if id := span.TraceID(); !id.IsZero() {
		t.Errorf("disabled span has trace ID %v", id)
	}
	_, remote := tr.StartRemoteSpan(context.Background(),
		"remote", "00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01")
	remote.Mark(FlagError)
	remote.AddLink(TraceID{Hi: 1, Lo: 2}, SpanID(3))
	remote.AddBytes(128, 256)
	remote.End()
	if got := tr.Snapshot(); len(got) != 0 {
		t.Errorf("remote continuation kept %d spans while disabled", len(got))
	}
	if st := tr.SamplingStats(); st.Seen != 0 {
		t.Errorf("sampler saw %d roots while disabled", st.Seen)
	}
}

// TestKillSwitchZeroAllocs pins the cost contract: every disabled hot-path
// hook runs without a single allocation.
func TestKillSwitchZeroAllocs(t *testing.T) {
	prev := SetEnabled(false)
	defer SetEnabled(prev)

	r := NewRegistry()
	c := r.Counter("alloc_counter", "")
	g := r.Gauge("alloc_gauge", "")
	h := r.Histogram("alloc_hist", "", nil)
	tr := NewTracer(8)
	ctx := context.Background()

	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"Gauge.Set", func() { g.Set(1) }},
		{"Histogram.Observe", func() { h.Observe(100 * time.Microsecond) }},
		{"Now", func() { _ = Now() }},
		{"StartSpan", func() {
			_, span := tr.StartSpan(ctx, "off")
			span.SetAttr("k", "v")
			span.End()
		}},
		{"StartRemoteSpan", func() {
			_, span := tr.StartRemoteSpan(ctx, "off",
				"00-0123456789abcdeffedcba9876543210-deadbeefcafef00d-01")
			span.End()
		}},
		{"Span.TraceParent", func() {
			_, span := tr.StartSpan(ctx, "off")
			_ = span.TraceParent()
			_ = span.TraceID()
			_ = span.SpanID()
			span.End()
		}},
		{"Span.Mark+AddLink+AddBytes", func() {
			_, span := tr.StartSpan(ctx, "off")
			span.Mark(FlagRetry | FlagBreaker)
			span.AddLink(TraceID{Hi: 1, Lo: 2}, SpanID(3))
			span.AddBytes(128, 256)
			span.End()
		}},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s allocates %v per run while disabled", tc.name, n)
		}
	}
}
