package telemetry

import (
	"sync/atomic"
	"time"
)

// Trace identity. Every root span is assigned a 128-bit trace ID and every
// span a 64-bit span ID, propagated across the wire protocol in a
// traceparent-style header so client → server → store spans form one tree.
//
// IDs come from a seeded splitmix64 sequence (the same construction the
// resilience jitter and netsim fault draws use): tests call SeedTraceIDs with
// a fixed seed and get bit-identical trace trees, while production seeds from
// the clock at init. The generator is allocation-free and lock-free.

// TraceID is a 128-bit trace identifier. The zero value means "no trace".
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is the invalid all-zero trace ID.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	var b [32]byte
	putHex64(b[:16], id.Hi)
	putHex64(b[16:], id.Lo)
	return string(b[:])
}

// SpanID is a 64-bit span identifier. Zero means "no span".
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	var b [16]byte
	putHex64(b[:], uint64(id))
	return string(b[:])
}

const hexDigits = "0123456789abcdef"

func putHex64(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
	_ = dst[15]
}

func parseHex64(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// idState is the process-wide ID source: a base seed plus an atomic draw
// counter, mixed through splitmix64. Reseeding resets the counter so a fixed
// seed always replays the same ID sequence.
var idState struct {
	seed atomic.Uint64
	ctr  atomic.Uint64
}

func init() {
	// Production default: seed from the clock so concurrent processes do not
	// collide. Tests override with SeedTraceIDs for pinned trees.
	idState.seed.Store(uint64(time.Now().UnixNano()) | 1)
}

// SeedTraceIDs reseeds the trace/span ID generator and restarts its draw
// counter, making subsequent IDs a deterministic function of seed. Tests use
// this to pin exact trace trees.
func SeedTraceIDs(seed uint64) {
	idState.seed.Store(seed)
	idState.ctr.Store(0)
}

// nextIDWord draws the next 64-bit word from the seeded sequence
// (splitmix64 over seed + n·golden-gamma, never zero-biased by the caller).
func nextIDWord() uint64 {
	n := idState.ctr.Add(1)
	x := idState.seed.Load() + n*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// NewTraceID draws a fresh, never-zero trace ID.
func NewTraceID() TraceID {
	id := TraceID{Hi: nextIDWord(), Lo: nextIDWord()}
	if id.IsZero() {
		id.Lo = 1
	}
	return id
}

// NewSpanID draws a fresh, never-zero span ID.
func NewSpanID() SpanID {
	v := nextIDWord()
	if v == 0 {
		v = 1
	}
	return SpanID(v)
}

// FormatTraceParent renders a W3C-style traceparent value:
// "00-<32 hex trace id>-<16 hex span id>-01".
func FormatTraceParent(trace TraceID, span SpanID) string {
	var b [55]byte
	b[0], b[1], b[2] = '0', '0', '-'
	putHex64(b[3:19], trace.Hi)
	putHex64(b[19:35], trace.Lo)
	b[35] = '-'
	putHex64(b[36:52], uint64(span))
	b[52], b[53], b[54] = '-', '0', '1'
	return string(b[:])
}

// ParseTraceParent parses a traceparent value produced by FormatTraceParent
// (any 2-hex version and flags byte are accepted). It returns ok=false on any
// malformed or all-zero input, which callers treat as "no incoming trace".
func ParseTraceParent(s string) (TraceID, SpanID, bool) {
	if len(s) != 55 || s[2] != '-' || s[35] != '-' || s[52] != '-' {
		return TraceID{}, 0, false
	}
	hi, ok1 := parseHex64(s[3:19])
	lo, ok2 := parseHex64(s[19:35])
	sp, ok3 := parseHex64(s[36:52])
	if !ok1 || !ok2 || !ok3 {
		return TraceID{}, 0, false
	}
	trace := TraceID{Hi: hi, Lo: lo}
	if trace.IsZero() || sp == 0 {
		return TraceID{}, 0, false
	}
	return trace, SpanID(sp), true
}
