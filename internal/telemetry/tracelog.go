package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// DefaultTraceLogMaxBytes caps a trace-log file before it rotates.
const DefaultTraceLogMaxBytes = 16 << 20 // 16 MiB

// TraceLog is the bounded JSONL trace exporter: every kept trace is appended
// as one JSON line. When the file would exceed maxBytes it is rotated once to
// "<path>.1" (replacing any previous rotation), so disk use is bounded at
// roughly twice maxBytes no matter how long the process runs.
type TraceLog struct {
	mu       sync.Mutex
	path     string
	maxBytes int64
	f        *os.File
	size     int64
	dropped  uint64
}

// NewTraceLog opens (or creates, appending) the trace log at path. maxBytes
// <= 0 selects DefaultTraceLogMaxBytes.
func NewTraceLog(path string, maxBytes int64) (*TraceLog, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultTraceLogMaxBytes
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("trace log: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace log: %w", err)
	}
	return &TraceLog{path: path, maxBytes: maxBytes, f: f, size: st.Size()}, nil
}

// ExportTrace appends one kept trace as a JSON line, rotating first if the
// write would push the file past the byte budget. Failures are counted, not
// propagated — the trace log must never take down the serving path.
func (l *TraceLog) ExportTrace(root SpanJSON) {
	line, err := json.Marshal(root)
	if err != nil {
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		l.dropped++
		return
	}
	if l.size+int64(len(line)) > l.maxBytes && l.size > 0 {
		if err := l.rotateLocked(); err != nil {
			l.dropped++
			return
		}
	}
	n, err := l.f.Write(line)
	l.size += int64(n)
	if err != nil {
		l.dropped++
	}
}

// rotateLocked closes the current file, moves it to "<path>.1" (clobbering
// any previous rotation), and reopens a fresh file at path.
func (l *TraceLog) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		l.f = nil
		return err
	}
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		l.f = nil
		return err
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		l.f = nil
		return err
	}
	l.f = f
	l.size = 0
	return nil
}

// Dropped reports how many export attempts were lost to I/O errors.
func (l *TraceLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Close flushes and closes the underlying file. Further exports are counted
// as dropped.
func (l *TraceLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
