package coalesce

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quepa/internal/core"
)

var gk = core.NewGlobalKey("db", "coll", "hot")

// TestStampedeOneFetch: 100 concurrent callers of the same key cost exactly
// one fetch. The fetch blocks until all 99 followers are registered, so the
// test is deterministic rather than timing-dependent.
func TestStampedeOneFetch(t *testing.T) {
	g := NewGroup()
	var fetches atomic.Int64
	release := make(chan struct{})
	fetch := func(context.Context, core.GlobalKey) (core.Object, bool, error) {
		fetches.Add(1)
		<-release
		return core.NewObject(gk, map[string]string{"v": "1"}), true, nil
	}

	const callers = 100
	var wg sync.WaitGroup
	results := make([]bool, callers)
	shared := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			obj, ok, sh, err := g.Do(context.Background(), gk, fetch)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = ok && obj.Fields["v"] == "1"
			shared[i] = sh
		}(i)
	}

	// Wait until the leader is in flight and every other caller joined it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		followers, inFlight := g.Waiters(gk)
		if inFlight && followers == callers-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stampede never assembled: %d followers, inFlight=%v", followers, inFlight)
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()

	if n := fetches.Load(); n != 1 {
		t.Fatalf("fetches = %d, want 1", n)
	}
	sharedCount := 0
	for i := 0; i < callers; i++ {
		if !results[i] {
			t.Fatalf("caller %d got a wrong result", i)
		}
		if shared[i] {
			sharedCount++
		}
	}
	if sharedCount != callers-1 {
		t.Errorf("shared = %d, want %d", sharedCount, callers-1)
	}
}

// TestNotFoundShared: the found=false outcome is shared too (that is the
// lazy-deletion stampede the negative cache and coalescing guard against).
func TestNotFoundShared(t *testing.T) {
	g := NewGroup()
	_, ok, shared, err := g.Do(context.Background(), gk, func(context.Context, core.GlobalKey) (core.Object, bool, error) {
		return core.Object{}, false, nil
	})
	if err != nil || ok || shared {
		t.Fatalf("leader: ok=%v shared=%v err=%v", ok, shared, err)
	}
}

// TestErrorShared: a store error reaches every caller of the flight.
func TestErrorShared(t *testing.T) {
	g := NewGroup()
	boom := errors.New("store down")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, _, errs[i] = g.Do(context.Background(), gk, func(context.Context, core.GlobalKey) (core.Object, bool, error) {
				<-release
				return core.Object{}, false, boom
			})
		}(i)
	}
	for {
		if f, in := g.Waiters(gk); in && f == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Errorf("caller %d: err = %v", i, err)
		}
	}
}

// TestLeaderCancelDoesNotPoisonFollower: a follower whose own context is
// alive retries as leader when the first flight died of the leader's
// cancellation, instead of propagating context.Canceled to an innocent
// caller.
func TestLeaderCancelDoesNotPoisonFollower(t *testing.T) {
	g := NewGroup()
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var fetches atomic.Int64

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // leader: its fetch fails with its own cancellation
		defer wg.Done()
		_, _, _, err := g.Do(leaderCtx, gk, func(context.Context, core.GlobalKey) (core.Object, bool, error) {
			close(inFlight)
			<-release
			return core.Object{}, false, leaderCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader err = %v", err)
		}
	}()
	<-inFlight

	wg.Add(1)
	go func() { // follower with a live context
		defer wg.Done()
		obj, ok, _, err := g.Do(context.Background(), gk, func(context.Context, core.GlobalKey) (core.Object, bool, error) {
			fetches.Add(1)
			return core.NewObject(gk, map[string]string{"v": "retried"}), true, nil
		})
		if err != nil || !ok || obj.Fields["v"] != "retried" {
			t.Errorf("follower: obj=%v ok=%v err=%v", obj, ok, err)
		}
	}()
	for {
		if f, in := g.Waiters(gk); in && f == 1 {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancelLeader()
	close(release)
	wg.Wait()
	if n := fetches.Load(); n != 1 {
		t.Errorf("follower retries = %d, want 1", n)
	}
}

// TestDistinctKeysDoNotCoalesce: different keys fly independently.
func TestDistinctKeysDoNotCoalesce(t *testing.T) {
	g := NewGroup()
	var fetches atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := core.NewGlobalKey("db", "coll", fmt.Sprintf("k%d", i))
			_, _, _, err := g.Do(context.Background(), k, func(context.Context, core.GlobalKey) (core.Object, bool, error) {
				fetches.Add(1)
				return core.NewObject(k, nil), true, nil
			})
			if err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if n := fetches.Load(); n != 32 {
		t.Errorf("fetches = %d, want 32", n)
	}
}

// TestFollowerPathZeroAllocs pins the coalesced-hit path at zero heap
// allocations: joining a flight is a map read, a counter bump and a
// WaitGroup wait. An already-completed call stays registered for the whole
// run so every Do below takes the follower path.
func TestFollowerPathZeroAllocs(t *testing.T) {
	g := NewGroup()
	sh := g.shardFor(gk)
	c := &call{obj: core.NewObject(gk, map[string]string{"v": "1"}), ok: true}
	sh.mu.Lock()
	sh.flight[gk] = c
	sh.mu.Unlock()
	ctx := context.Background()
	allocs := testing.AllocsPerRun(100, func() {
		obj, ok, shared, err := g.Do(ctx, gk, nil)
		if !ok || !shared || err != nil || obj.Fields["v"] != "1" {
			t.Fatal("follower path broken")
		}
	})
	if allocs != 0 {
		t.Errorf("follower join allocates %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkFollowerJoin measures the pure follower path: a permanently open
// flight that followers join and leave. 0 allocs/op is the contract.
func BenchmarkFollowerJoin(b *testing.B) {
	g := NewGroup()
	sh := g.shardFor(gk)
	c := &call{obj: core.NewObject(gk, nil), ok: true}
	// A completed call left registered: followers join, wait (returns
	// immediately) and read the result — the exact coalesced-hit sequence
	// minus the scheduling noise of a live leader.
	sh.mu.Lock()
	sh.flight[gk] = c
	sh.mu.Unlock()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, ok, shared, err := g.Do(ctx, gk, nil)
		if !ok || !shared || err != nil {
			b.Fatal("follower path broken")
		}
	}
}

// TestNegativeCacheTTL: entries expire after the TTL and count hits while
// they live.
func TestNegativeCacheTTL(t *testing.T) {
	n := NewNegativeCache(8, time.Second)
	now := time.Unix(1000, 0)
	n.SetClock(func() time.Time { return now })
	n.Put(gk)
	if !n.Has(gk) {
		t.Fatal("fresh negative entry not found")
	}
	now = now.Add(2 * time.Second)
	if n.Has(gk) {
		t.Fatal("expired negative entry still served")
	}
	if n.Hits() != 1 {
		t.Errorf("hits = %d, want 1", n.Hits())
	}
}

// TestNegativeCacheBounded: the ring caps the remembered misses.
func TestNegativeCacheBounded(t *testing.T) {
	n := NewNegativeCache(4, time.Hour)
	for i := 0; i < 100; i++ {
		n.Put(core.NewGlobalKey("db", "c", fmt.Sprintf("k%d", i)))
	}
	if n.Len() > 4 {
		t.Errorf("Len = %d exceeds capacity 4", n.Len())
	}
	// The newest entries survived.
	if !n.Has(core.NewGlobalKey("db", "c", "k99")) {
		t.Error("newest negative entry evicted")
	}
	if n.Has(core.NewGlobalKey("db", "c", "k0")) {
		t.Error("oldest negative entry survived a full wrap")
	}
}

// TestNegativeCacheForget: an observed re-insert clears the entry at once.
func TestNegativeCacheForget(t *testing.T) {
	n := NewNegativeCache(8, time.Hour)
	n.Put(gk)
	n.Forget(gk)
	if n.Has(gk) {
		t.Error("forgotten entry still served")
	}
}

// TestNegativeCacheConcurrent exercises the cache under -race.
func TestNegativeCacheConcurrent(t *testing.T) {
	n := NewNegativeCache(64, time.Millisecond)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := core.NewGlobalKey("db", "c", fmt.Sprintf("g%d-%d", g, i%16))
				n.Put(k)
				n.Has(k)
				if i%32 == 0 {
					n.Forget(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if n.Len() > 64 {
		t.Errorf("Len = %d exceeds capacity", n.Len())
	}
}
