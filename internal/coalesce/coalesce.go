// Package coalesce deduplicates concurrent fetches of the same global key:
// N in-flight requests for one object cost one polystore round trip. It sits
// between the object cache and the polystore on the augmenter's fetch path —
// the cache serves repetition over time, coalescing serves repetition in
// flight, which is exactly the shape of a hot key under concurrent query
// load (every in-flight query augments the same popular object).
//
// The implementation is a small singleflight typed for core.GlobalKey. The
// call table is sharded 16 ways by the same FNV-1a placement the object
// cache uses, so registering a flight does not convoy on one mutex; the
// follower path (join an existing flight, wait, read the result) performs no
// heap allocation.
//
// Leader cancellation does not poison followers: when a flight fails with
// the leader's context error while the follower's own context is still
// alive, the follower retries the flight as its own leader instead of
// inheriting a cancellation it never asked for.
package coalesce

import (
	"context"
	"errors"
	"sync"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

const groupShards = 16

// Fetch is the store access a Group deduplicates: it returns the object, a
// found flag (false = the store authoritatively has no such object) and an
// error. The flag mirrors the augmenter's lazy-deletion contract. Taking the
// context and key as arguments lets callers pass one long-lived function
// value instead of allocating a closure per miss.
type Fetch func(ctx context.Context, gk core.GlobalKey) (core.Object, bool, error)

// Group coalesces concurrent fetches by global key. The zero value is NOT
// ready to use; construct with NewGroup.
type Group struct {
	shards [groupShards]groupShard
}

type groupShard struct {
	mu     sync.Mutex
	flight map[core.GlobalKey]*call
}

// call is one in-flight fetch. Followers block on wg; the results are
// published before wg.Done, so a woken follower reads them without locks.
// The leader's span identity is written before the call is published, so
// followers read it lock-free to link their traces to the fetch they rode.
type call struct {
	wg        sync.WaitGroup
	obj       core.Object
	ok        bool
	err       error
	followers int

	ltid telemetry.TraceID // leader span identity (zero when the leader is untraced)
	lsid telemetry.SpanID
}

// NewGroup returns an empty coalescing group.
func NewGroup() *Group {
	g := &Group{}
	for i := range g.shards {
		g.shards[i].flight = map[core.GlobalKey]*call{}
	}
	return g
}

func (g *Group) shardFor(gk core.GlobalKey) *groupShard {
	h := uint32(2166136261)
	for i := 0; i < len(gk.Database); i++ {
		h = (h ^ uint32(gk.Database[i])) * 16777619
	}
	h = (h ^ '.') * 16777619
	for i := 0; i < len(gk.Collection); i++ {
		h = (h ^ uint32(gk.Collection[i])) * 16777619
	}
	h = (h ^ '.') * 16777619
	for i := 0; i < len(gk.Key); i++ {
		h = (h ^ uint32(gk.Key[i])) * 16777619
	}
	return &g.shards[h%groupShards]
}

// Do executes fetch under the key's flight: the first caller (the leader)
// runs it, concurrent callers for the same key wait and share the result.
// The returned shared flag is true on the follower path — the caller got the
// answer without a store round trip of its own.
//
// A flight that failed with the leader's context error is not shared with
// followers whose own context is still live; they rerun as leaders.
func (g *Group) Do(ctx context.Context, gk core.GlobalKey, fetch Fetch) (obj core.Object, ok bool, shared bool, err error) {
	sh := g.shardFor(gk)
	for {
		sh.mu.Lock()
		if c, inFlight := sh.flight[gk]; inFlight {
			c.followers++
			sh.mu.Unlock()
			// A traced follower records the wait as a link span pointing at
			// the leader's fetch. Untraced followers (no span in ctx) skip
			// this entirely, keeping the follower join allocation-free.
			var wsp *telemetry.Span
			if telemetry.SpanFromContext(ctx) != nil {
				_, wsp = telemetry.StartSpan(ctx, "coalesce.wait")
				wsp.AddLink(c.ltid, c.lsid)
			}
			c.wg.Wait()
			wsp.End()
			if leaderAborted(c.err) && ctx.Err() == nil {
				continue // the leader was cancelled, not us: retry as leader
			}
			return c.obj, c.ok, true, c.err
		}
		c := &call{}
		if lsp := telemetry.SpanFromContext(ctx); lsp != nil {
			c.ltid, c.lsid = lsp.TraceID(), lsp.SpanID()
		}
		c.wg.Add(1)
		sh.flight[gk] = c
		sh.mu.Unlock()

		c.obj, c.ok, c.err = fetch(ctx, gk)

		// Deregister before waking the followers so a late arrival starts a
		// fresh flight instead of reading a completed (possibly stale) one.
		sh.mu.Lock()
		delete(sh.flight, gk)
		sh.mu.Unlock()
		c.wg.Done()
		return c.obj, c.ok, false, c.err
	}
}

// leaderAborted reports whether a flight failed because its leader's context
// died — the one failure mode followers must not inherit.
func leaderAborted(err error) bool {
	return err != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded))
}

// Waiters reports how many followers are currently blocked on the key's
// flight, and whether a flight is in progress at all. Tests use it to build
// deterministic stampedes; stats endpoints may sample it.
func (g *Group) Waiters(gk core.GlobalKey) (followers int, inFlight bool) {
	sh := g.shardFor(gk)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.flight[gk]
	if !ok {
		return 0, false
	}
	return c.followers, true
}
