package coalesce

import (
	"sync"
	"time"

	"quepa/internal/core"
)

// NegativeCache remembers keys the polystore recently confirmed missing, so
// that lazy-deletion misses do not stampede: without it, a key that is still
// in the A' index but gone from its store costs one (coalesced) round trip
// per query until the index catches up. Entries expire after a TTL — an
// object re-created under the same key becomes visible again within one TTL,
// which bounds the staleness this cache can introduce.
//
// The cache is bounded by a FIFO ring: inserting over capacity overwrites
// the oldest remembered miss. It is safe for concurrent use; it sits on the
// fetch-miss path, where a mutex is noise next to the store round trip just
// avoided or about to be paid.
type NegativeCache struct {
	mu     sync.Mutex
	ttl    time.Duration
	expiry map[core.GlobalKey]time.Time
	ring   []core.GlobalKey
	next   int
	hits   uint64
	now    func() time.Time // injectable clock for tests
}

// Defaults used by NewNegativeCache when given zero values.
const (
	DefaultNegativeTTL      = time.Second
	DefaultNegativeCapacity = 1024
)

// NewNegativeCache builds a negative-result cache holding at most capacity
// missing keys for ttl each. Zero or negative arguments select the defaults;
// to disable negative caching entirely, don't consult one.
func NewNegativeCache(capacity int, ttl time.Duration) *NegativeCache {
	if capacity <= 0 {
		capacity = DefaultNegativeCapacity
	}
	if ttl <= 0 {
		ttl = DefaultNegativeTTL
	}
	return &NegativeCache{
		ttl:    ttl,
		expiry: make(map[core.GlobalKey]time.Time, capacity),
		ring:   make([]core.GlobalKey, capacity),
		now:    time.Now,
	}
}

// SetClock overrides the cache's clock (tests drive expiry deterministically).
func (n *NegativeCache) SetClock(now func() time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.now = now
}

// Put remembers that gk was just confirmed missing.
func (n *NegativeCache) Put(gk core.GlobalKey) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.expiry[gk]; !dup {
		// Claim a ring slot, forgetting whatever miss occupied it.
		if old := n.ring[n.next]; old != (core.GlobalKey{}) {
			delete(n.expiry, old)
		}
		n.ring[n.next] = gk
		n.next = (n.next + 1) % len(n.ring)
	}
	n.expiry[gk] = n.now().Add(n.ttl)
}

// Has reports whether gk is remembered missing and not yet expired.
func (n *NegativeCache) Has(gk core.GlobalKey) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	exp, ok := n.expiry[gk]
	if !ok {
		return false
	}
	if n.now().After(exp) {
		delete(n.expiry, gk) // lazily expire; its ring slot ages out on its own
		return false
	}
	n.hits++
	return true
}

// Forget drops gk immediately (an explicit re-insert observed by the caller).
func (n *NegativeCache) Forget(gk core.GlobalKey) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.expiry, gk)
}

// Hits reports how many store round trips the cache has absorbed.
func (n *NegativeCache) Hits() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.hits
}

// Len reports the number of remembered (possibly expired) keys.
func (n *NegativeCache) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.expiry)
}
