package coalesce

import (
	"context"
	"sync"
	"testing"
	"time"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// TestChaosFollowerLinkResolvesLeader pins the trace contract of request
// coalescing: a traced follower that joins an in-flight fetch gets a
// "coalesce.wait" span carrying a link that resolves to the leader's span —
// the two requests are separate traces, but the link makes the shared fetch
// navigable from either side. The fetch blocks until the follower has
// registered, so the leader/follower roles are deterministic.
func TestChaosFollowerLinkResolvesLeader(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)

	g := NewGroup()
	release := make(chan struct{})
	fetch := func(context.Context, core.GlobalKey) (core.Object, bool, error) {
		<-release
		return core.NewObject(gk, map[string]string{"v": "1"}), true, nil
	}

	lctx, leader := telemetry.StartSpan(context.Background(), "leader-request")
	fctx, follower := telemetry.StartSpan(context.Background(), "follower-request")
	if leader == nil || follower == nil {
		t.Fatal("no spans (telemetry disabled?)")
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, ok, _, err := g.Do(lctx, gk, fetch); err != nil || !ok {
			t.Errorf("leader Do = ok=%v err=%v", ok, err)
		}
	}()
	waitFor(t, func() bool { _, inFlight := g.Waiters(gk); return inFlight })

	wg.Add(1)
	go func() {
		defer wg.Done()
		obj, ok, shared, err := g.Do(fctx, gk, fetch)
		if err != nil || !ok || !shared || obj.Fields["v"] != "1" {
			t.Errorf("follower Do = %v ok=%v shared=%v err=%v", obj, ok, shared, err)
		}
	}()
	waitFor(t, func() bool { followers, _ := g.Waiters(gk); return followers == 1 })
	close(release)
	wg.Wait()
	follower.End()
	leader.End()

	tree := follower.JSON()
	var wait *telemetry.SpanJSON
	for i := range tree.Children {
		if tree.Children[i].Name == "coalesce.wait" {
			wait = &tree.Children[i]
		}
	}
	if wait == nil {
		t.Fatalf("follower trace has no coalesce.wait span: %+v", tree)
	}
	if len(wait.Links) != 1 {
		t.Fatalf("coalesce.wait links = %v, want exactly one", wait.Links)
	}
	if got, want := wait.Links[0].TraceID, leader.TraceID().String(); got != want {
		t.Errorf("link trace = %s, want leader trace %s", got, want)
	}
	if got, want := wait.Links[0].SpanID, leader.SpanID().String(); got != want {
		t.Errorf("link span = %s, want leader span %s", got, want)
	}
	// The leader pays the fetch itself: no wait span, no self-link.
	for _, c := range leader.JSON().Children {
		if c.Name == "coalesce.wait" {
			t.Errorf("leader trace grew a coalesce.wait span: %+v", c)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
