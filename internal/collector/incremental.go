// Incremental collection.
//
// The batch pipeline (Run/BuildIndex) is a pure function of the object
// corpus: block, score every candidate pair, threshold, deduplicate, bulk
// load. Incremental collection maintains the same function under a stream of
// object upserts and deletes without re-running it: only the candidate pairs
// a change can actually affect are re-scored, deduplication is recomputed
// over the maintained raw relation set (cheap — it is a map pass, the
// comparator ensemble is the expensive part), and only the connected
// components whose relations changed are rebuilt — offline, through the same
// aindex.BulkLoad component machinery the batch pipeline uses — and swapped
// into the live index with Index.ReplaceComponent, which journals the whole
// swap as one epoch-fenced batch for the WAL.
//
// The invariant, pinned by TestIncrementalMatchesFullRebuild: after any
// sequence of Apply calls, Index().Edges() is identical to what
// BuildIndex(final corpus) would produce — same relations, same
// probabilities, same closure.
package collector

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/core"
	"quepa/internal/telemetry"
)

var (
	deltaPairsRescored = telemetry.NewCounter("quepa_collector_delta_pairs_rescored_total",
		"candidate pairs re-scored by incremental collection")
	deltaComponents = telemetry.NewCounter("quepa_collector_delta_components_total",
		"connected components rebuilt and swapped by incremental collection")
	deltaApplies = telemetry.NewCounter("quepa_collector_delta_applies_total",
		"incremental collection batches applied")
)

// ChangeKind discriminates changefeed entries.
type ChangeKind int

const (
	// Upsert inserts a new object or replaces the fields of an existing one.
	Upsert ChangeKind = iota
	// Delete removes the object; only Change.Object.GK is consulted.
	Delete
)

// Change is one object-level mutation from a store's changefeed.
type Change struct {
	Kind   ChangeKind
	Object core.Object
}

// DeltaStats summarizes one Apply batch.
type DeltaStats struct {
	Changes       int           // changefeed entries processed
	PairsRescored int           // candidate pairs put through the ensemble
	RawChanged    int           // raw (pre-dedupe) relations added/updated/dropped
	LiveChanged   int           // post-dedupe relations that differ from before
	Components    int           // connected components rebuilt
	KeysReplaced  int           // index keys inside the rebuilt components
	RelsReloaded  int           // relations re-loaded into those components
	Elapsed       time.Duration // wall time of the batch
}

// pairKey is an unordered candidate pair, endpoints in canonical order.
type pairKey struct{ lo, hi core.GlobalKey }

func makePairKey(a, b core.GlobalKey) pairKey {
	if a.Compare(b) <= 0 {
		return pairKey{lo: a, hi: b}
	}
	return pairKey{lo: b, hi: a}
}

// Incremental maintains a collector-built index under a change stream.
// Methods are safe for one caller at a time (an internal mutex serializes
// Apply); reads of the index itself go through the usual index locks.
type Incremental struct {
	c *Collector

	mu      sync.Mutex
	objects map[core.GlobalKey]core.Object
	seq     map[core.GlobalKey]int // arrival order; orients scored relations
	nextSeq int
	tokens  map[core.GlobalKey][]string            // blocking tokens per object
	blocks  map[string]map[core.GlobalKey]struct{} // full membership, eligibility applied on read
	raw     map[pairKey]core.PRelation             // thresholded scores, pre-dedupe
	live    map[pairKey]core.PRelation             // post-dedupe
	ix      *aindex.Index
}

// NewIncremental builds the initial index from the corpus with the batch
// pipeline's own internals and snapshots the bookkeeping — block membership
// and the raw pre-dedupe relation set — that Apply maintains from then on.
func NewIncremental(ctx context.Context, c *Collector, objects []core.Object) (*Incremental, error) {
	inc := &Incremental{
		c:       c,
		objects: make(map[core.GlobalKey]core.Object, len(objects)),
		seq:     make(map[core.GlobalKey]int, len(objects)),
		tokens:  map[core.GlobalKey][]string{},
		blocks:  map[string]map[core.GlobalKey]struct{}{},
		raw:     map[pairKey]core.PRelation{},
		live:    map[pairKey]core.PRelation{},
	}
	for _, o := range objects {
		if _, dup := inc.objects[o.GK]; dup {
			return nil, fmt.Errorf("collector: duplicate corpus key %v", o.GK)
		}
		inc.insertBookkeeping(o)
	}

	// Score the initial candidate set through the parallel batch pipeline.
	blocks, _ := c.blocks(objects)
	pairs, blockEnds := c.pairList(objects, blocks)
	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunks := (len(pairs) + chunkSize - 1) / chunkSize; workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}
	buckets, err := c.scorePairs(ctx, objects, pairs, blockEnds, workers)
	if err != nil {
		return nil, err
	}
	for _, b := range buckets {
		for _, r := range b {
			inc.raw[makePairKey(r.From, r.To)] = r
		}
	}

	inc.rededupe()
	ix, err := aindex.BulkLoadWorkers(inc.liveSorted(nil), c.cfg.Workers)
	if err != nil {
		return nil, err
	}
	inc.ix = ix
	return inc, nil
}

// Index returns the maintained A' index.
func (inc *Incremental) Index() *aindex.Index { return inc.ix }

// insertBookkeeping registers an object in the map/seq/token/block tables.
// Caller holds inc.mu (or is the constructor).
func (inc *Incremental) insertBookkeeping(o core.Object) {
	if _, known := inc.seq[o.GK]; !known {
		inc.seq[o.GK] = inc.nextSeq
		inc.nextSeq++
	}
	inc.objects[o.GK] = o
	toks := make([]string, 0, 8)
	for t := range tokenSet(o) {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	inc.tokens[o.GK] = toks
	for _, t := range toks {
		b := inc.blocks[t]
		if b == nil {
			b = map[core.GlobalKey]struct{}{}
			inc.blocks[t] = b
		}
		b[o.GK] = struct{}{}
	}
}

// removeBookkeeping unregisters an object. Caller holds inc.mu.
func (inc *Incremental) removeBookkeeping(gk core.GlobalKey) {
	for _, t := range inc.tokens[gk] {
		delete(inc.blocks[t], gk)
		if len(inc.blocks[t]) == 0 {
			delete(inc.blocks, t)
		}
	}
	delete(inc.tokens, gk)
	delete(inc.objects, gk)
	delete(inc.seq, gk)
}

// eligible reports whether a block of the given size produces candidate
// pairs (the batch pipeline's 2 <= size <= MaxBlockSize rule).
func (inc *Incremental) eligible(size int) bool {
	return size >= 2 && size <= inc.c.cfg.MaxBlockSize
}

// Apply processes one changefeed batch and brings the index to the state a
// full rebuild over the updated corpus would produce.
func (inc *Incremental) Apply(ctx context.Context, changes []Change) (DeltaStats, error) {
	start := time.Now()
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return DeltaStats{}, err
	}

	// Phase 1+2: walk the changes in order, and for each one mark the
	// affected candidate pairs against the CURRENT bookkeeping state, then
	// apply the change to the bookkeeping before looking at the next. The
	// interleaving matters: two inserts in one batch that land in the same
	// block only produce their mutual pair when the second insert sees the
	// first one's membership — evaluating the whole batch against the
	// pre-batch state would miss it (and mis-judge eligibility crossings that
	// several changes push through together).
	//
	// A change to object k touches the blocks of its old and new token sets;
	// within each such block, pairs involving k are affected directly, and if
	// the block crosses an eligibility boundary (grows to 2, shrinks below 2,
	// or crosses MaxBlockSize in either direction) EVERY pair inside it gains
	// or loses candidacy, so the whole block is affected. Blocks ineligible
	// both before and after contribute nothing and are skipped — that is what
	// keeps a stop-token block with thousands of members from exploding the
	// delta.
	affected := map[pairKey]struct{}{}
	markPair := func(a, b core.GlobalKey) {
		if a != b {
			affected[makePairKey(a, b)] = struct{}{}
		}
	}
	markBlockPairs := func(members []core.GlobalKey) {
		for i := 0; i < len(members); i++ {
			for j := i + 1; j < len(members); j++ {
				markPair(members[i], members[j])
			}
		}
	}
	for _, ch := range changes {
		gk := ch.Object.GK
		oldToks := inc.tokens[gk]
		var newToks map[string]bool
		if ch.Kind == Upsert {
			newToks = tokenSet(ch.Object)
		}
		touched := map[string]bool{}
		for _, t := range oldToks {
			touched[t] = true
		}
		for t := range newToks {
			touched[t] = true
		}
		for t := range touched {
			members := memberList(inc.blocks[t])
			before := len(members)
			after := before
			_, had := inc.blocks[t][gk]
			if had && !newToks[t] {
				after--
			}
			if !had && newToks[t] {
				after++
			}
			eligBefore, eligAfter := inc.eligible(before), inc.eligible(after)
			switch {
			case !eligBefore && !eligAfter:
				// Ineligible both sides: no pair of this block changes
				// candidacy through it.
			case eligBefore != eligAfter:
				withGK := members
				if !had {
					withGK = append(append([]core.GlobalKey{}, members...), gk)
				}
				markBlockPairs(withGK)
			default:
				for _, m := range members {
					markPair(gk, m)
				}
			}
		}

		// Apply this change before evaluating the next one.
		switch ch.Kind {
		case Upsert:
			if _, known := inc.objects[gk]; known {
				// Replace: drop old token/block membership first, keep seq.
				for _, t := range inc.tokens[gk] {
					delete(inc.blocks[t], gk)
					if len(inc.blocks[t]) == 0 {
						delete(inc.blocks, t)
					}
				}
			}
			inc.insertBookkeeping(ch.Object)
		case Delete:
			inc.removeBookkeeping(gk)
		}
	}

	// Phase 3: re-score the affected pairs against the updated corpus.
	stats := DeltaStats{Changes: len(changes)}
	for pk := range affected {
		a, aok := inc.objects[pk.lo]
		b, bok := inc.objects[pk.hi]
		old, hadRel := inc.raw[pk]
		if !aok || !bok || !inc.isCandidate(pk) {
			if hadRel {
				delete(inc.raw, pk)
				stats.RawChanged++
			}
			continue
		}
		stats.PairsRescored++
		// Orient like the batch pipeline: the earlier-arrived object is From.
		if inc.seq[b.GK] < inc.seq[a.GK] {
			a, b = b, a
		}
		score := inc.c.Score(a, b)
		var r core.PRelation
		keep := true
		switch {
		case score >= inc.c.cfg.IdentityThreshold:
			r = core.NewIdentity(a.GK, b.GK, clampProb(score))
		case score >= inc.c.cfg.MatchingThreshold:
			r = core.NewMatching(a.GK, b.GK, clampProb(score))
		default:
			keep = false
		}
		if !keep {
			if hadRel {
				delete(inc.raw, pk)
				stats.RawChanged++
			}
			continue
		}
		if !hadRel || old != r {
			inc.raw[pk] = r
			stats.RawChanged++
		}
	}
	deltaPairsRescored.Add(uint64(stats.PairsRescored))

	// Phase 4: recompute deduplication over the full raw set (order-free, so
	// a map pass suffices) and diff against the previous live set.
	oldLive := inc.live
	inc.rededupe()
	changed := map[pairKey]struct{}{}
	for pk, r := range inc.live {
		if o, ok := oldLive[pk]; !ok || o != r {
			changed[pk] = struct{}{}
		}
	}
	for pk := range oldLive {
		if _, ok := inc.live[pk]; !ok {
			changed[pk] = struct{}{}
		}
	}
	stats.LiveChanged = len(changed)
	if len(changed) == 0 {
		stats.Elapsed = time.Since(start)
		deltaApplies.Inc()
		return stats, nil
	}

	// Phase 5: flood-fill the affected connected components over the union
	// of the old and new live adjacency — union, because a delta can split a
	// component (old edges bridge it) or merge several (new edges do), and
	// both sides must be rebuilt.
	adj := map[core.GlobalKey][]core.GlobalKey{}
	addAdj := func(m map[pairKey]core.PRelation) {
		for pk := range m {
			adj[pk.lo] = append(adj[pk.lo], pk.hi)
			adj[pk.hi] = append(adj[pk.hi], pk.lo)
		}
	}
	addAdj(oldLive)
	addAdj(inc.live)
	component := map[core.GlobalKey]struct{}{}
	var queue []core.GlobalKey
	visit := func(gk core.GlobalKey) {
		if _, seen := component[gk]; !seen {
			component[gk] = struct{}{}
			queue = append(queue, gk)
		}
	}
	for pk := range changed {
		visit(pk.lo)
		visit(pk.hi)
	}
	for len(queue) > 0 {
		gk := queue[0]
		queue = queue[1:]
		for _, n := range adj[gk] {
			visit(n)
		}
	}
	stats.KeysReplaced = len(component)

	// Phase 6: rebuild the affected components offline with the same BulkLoad
	// machinery as the batch pipeline and swap them in atomically.
	compRels := inc.liveSorted(component)
	stats.RelsReloaded = len(compRels)
	repl, err := aindex.BulkLoadWorkers(compRels, inc.c.cfg.Workers)
	if err != nil {
		return stats, fmt.Errorf("collector: delta bulk load: %w", err)
	}
	stats.Components = countComponents(compRels)
	removeKeys := make([]core.GlobalKey, 0, len(component))
	for gk := range component {
		removeKeys = append(removeKeys, gk)
	}
	inc.ix.ReplaceComponent(removeKeys, repl)
	deltaComponents.Add(uint64(stats.Components))
	deltaApplies.Inc()
	stats.Elapsed = time.Since(start)
	return stats, nil
}

// Serve drains a changefeed until the context ends or the channel closes,
// applying batches of up to maxBatch entries (draining whatever is
// immediately available before re-scoring, so bursts amortize).
func (inc *Incremental) Serve(ctx context.Context, feed <-chan Change, maxBatch int) error {
	if maxBatch <= 0 {
		maxBatch = 64
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case ch, ok := <-feed:
			if !ok {
				return nil
			}
			batch := []Change{ch}
		drain:
			for len(batch) < maxBatch {
				select {
				case more, ok := <-feed:
					if !ok {
						break drain
					}
					batch = append(batch, more)
				default:
					break drain
				}
			}
			if _, err := inc.Apply(ctx, batch); err != nil {
				return err
			}
		}
	}
}

// isCandidate reports whether the pair shares at least one eligible block.
// Caller holds inc.mu.
func (inc *Incremental) isCandidate(pk pairKey) bool {
	ta, tb := inc.tokens[pk.lo], inc.tokens[pk.hi]
	// Both token lists are sorted; walk them in lockstep.
	for i, j := 0, 0; i < len(ta) && j < len(tb); {
		switch {
		case ta[i] < tb[j]:
			i++
		case ta[i] > tb[j]:
			j++
		default:
			if inc.eligible(len(inc.blocks[ta[i]])) {
				return true
			}
			i++
			j++
		}
	}
	return false
}

// rededupe recomputes the post-dedupe live set from the raw set. Caller
// holds inc.mu (or is the constructor).
func (inc *Incremental) rededupe() {
	rels := make([]core.PRelation, 0, len(inc.raw))
	for _, r := range inc.raw {
		rels = append(rels, r)
	}
	kept := inc.c.dedupeIdentities(rels)
	inc.live = make(map[pairKey]core.PRelation, len(kept))
	for _, r := range kept {
		inc.live[makePairKey(r.From, r.To)] = r
	}
}

// liveSorted returns the live relations — restricted to the given key set
// when non-nil — in the batch pipeline's canonical (From, To) order, so a
// component rebuild replays them in exactly the relative order a full
// rebuild would.
func (inc *Incremental) liveSorted(within map[core.GlobalKey]struct{}) []core.PRelation {
	rels := make([]core.PRelation, 0, len(inc.live))
	for pk, r := range inc.live {
		if within != nil {
			if _, ok := within[pk.lo]; !ok {
				continue
			}
		}
		rels = append(rels, r)
	}
	sort.Slice(rels, func(i, j int) bool {
		if c := rels[i].From.Compare(rels[j].From); c != 0 {
			return c < 0
		}
		return rels[i].To.Compare(rels[j].To) < 0
	})
	return rels
}

// countComponents counts the connected components of the relation set; keys
// in the replaced set with no surviving relation count as removed, not as
// components.
func countComponents(rels []core.PRelation) int {
	parent := map[core.GlobalKey]core.GlobalKey{}
	var find func(core.GlobalKey) core.GlobalKey
	find = func(x core.GlobalKey) core.GlobalKey {
		if parent[x] == x {
			return x
		}
		r := find(parent[x])
		parent[x] = r
		return r
	}
	for _, r := range rels {
		for _, gk := range [2]core.GlobalKey{r.From, r.To} {
			if _, ok := parent[gk]; !ok {
				parent[gk] = gk
			}
		}
		a, b := find(r.From), find(r.To)
		if a != b {
			parent[a] = b
		}
	}
	roots := map[core.GlobalKey]struct{}{}
	for gk := range parent {
		roots[find(gk)] = struct{}{}
	}
	return len(roots)
}

func memberList(m map[core.GlobalKey]struct{}) []core.GlobalKey {
	out := make([]core.GlobalKey, 0, len(m))
	for gk := range m {
		out = append(out, gk)
	}
	return out
}
