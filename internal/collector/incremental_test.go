package collector

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"quepa/internal/core"
)

// corpusGen produces deterministic synthetic objects with overlapping token
// vocabularies across three databases, so blocking, thresholding, identity
// dedupe and closure all fire.
type corpusGen struct{ rng *rand.Rand }

var genDBs = [3][2]string{{"pg", "users"}, {"mongo", "profiles"}, {"neo", "people"}}

func (g corpusGen) object(id int) core.Object {
	db := genDBs[id%len(genDBs)]
	entity := id / len(genDBs) % 17 // shared entity pool drives cross-db similarity
	fields := map[string]string{
		"name":  fmt.Sprintf("entity%03d surname%03d", entity, entity%7),
		"email": fmt.Sprintf("entity%03d@example.com", entity),
		"notes": fmt.Sprintf("cohort%d flavor%d", entity%5, g.rng.Intn(3)),
	}
	gk := core.NewGlobalKey(db[0], db[1], fmt.Sprintf("k%d", id))
	return core.NewObject(gk, fields)
}

// liveCorpus reconstructs the final corpus in arrival order, which is the
// order the incremental collector's orientation rule mirrors.
type liveCorpus struct {
	order []core.GlobalKey
	objs  map[core.GlobalKey]core.Object
}

func newLiveCorpus(initial []core.Object) *liveCorpus {
	lc := &liveCorpus{objs: map[core.GlobalKey]core.Object{}}
	for _, o := range initial {
		lc.upsert(o)
	}
	return lc
}

func (lc *liveCorpus) upsert(o core.Object) {
	if _, ok := lc.objs[o.GK]; !ok {
		lc.order = append(lc.order, o.GK)
	}
	lc.objs[o.GK] = o
}

func (lc *liveCorpus) delete(gk core.GlobalKey) {
	if _, ok := lc.objs[gk]; !ok {
		return
	}
	delete(lc.objs, gk)
	for i, k := range lc.order {
		if k == gk {
			lc.order = append(lc.order[:i], lc.order[i+1:]...)
			break
		}
	}
}

func (lc *liveCorpus) slice() []core.Object {
	out := make([]core.Object, 0, len(lc.objs))
	for _, gk := range lc.order {
		out = append(out, lc.objs[gk])
	}
	return out
}

// TestIncrementalMatchesFullRebuild is the equivalence property the whole
// incremental path stands on: after any sequence of upserts and deletes, the
// maintained index must be identical — same edges, same probabilities — to a
// from-scratch BuildIndex over the final corpus.
func TestIncrementalMatchesFullRebuild(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBlockSize = 16 // small, so eligibility boundaries are actually crossed
	cfg.Workers = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(100 + trial)))
			gen := corpusGen{rng: rng}

			initial := make([]core.Object, 0, 60)
			for id := 0; id < 60; id++ {
				initial = append(initial, gen.object(id))
			}
			inc, err := NewIncremental(ctx, c, initial)
			if err != nil {
				t.Fatal(err)
			}
			lc := newLiveCorpus(initial)

			// Sanity: the initial build must equal the batch pipeline.
			compareWithFull(t, c, ctx, inc, lc, "initial build")

			nextID := len(initial)
			for step := 0; step < 12; step++ {
				var batch []Change
				for n := rng.Intn(4) + 1; n > 0; n-- {
					switch {
					case len(lc.order) > 10 && rng.Intn(4) == 0: // delete
						victim := lc.order[rng.Intn(len(lc.order))]
						batch = append(batch, Change{Kind: Delete, Object: core.Object{GK: victim}})
						lc.delete(victim)
					case len(lc.order) > 0 && rng.Intn(3) == 0: // field update
						gk := lc.order[rng.Intn(len(lc.order))]
						o := gen.object(nextID) // fresh fields...
						o.GK = gk               // ...same key
						batch = append(batch, Change{Kind: Upsert, Object: o})
						lc.upsert(o)
						nextID++
					default: // insert
						o := gen.object(nextID)
						nextID++
						batch = append(batch, Change{Kind: Upsert, Object: o})
						lc.upsert(o)
					}
				}
				if _, err := inc.Apply(ctx, batch); err != nil {
					t.Fatalf("apply step %d: %v", step, err)
				}
				compareWithFull(t, c, ctx, inc, lc, fmt.Sprintf("step %d", step))
			}
		})
	}
}

func compareWithFull(t *testing.T, c *Collector, ctx context.Context, inc *Incremental, lc *liveCorpus, msg string) {
	t.Helper()
	full, _, err := c.BuildIndex(ctx, lc.slice())
	if err != nil {
		t.Fatalf("%s: full rebuild: %v", msg, err)
	}
	got, want := inc.Index().Edges(), full.Edges()
	if !reflect.DeepEqual(normalizeEdges(got), normalizeEdges(want)) {
		t.Fatalf("%s: incremental index diverged from full rebuild:\n got %d edges %v\nwant %d edges %v",
			msg, len(got), got, len(want), want)
	}
}

// normalizeEdges canonicalizes edge direction before comparison: the two
// pipelines may discover the same logical relation with opposite From/To
// orientation, which the symmetric p-relation semantics make equivalent.
func normalizeEdges(rels []core.PRelation) []core.PRelation {
	out := make([]core.PRelation, len(rels))
	for i, r := range rels {
		if r.From.Compare(r.To) > 0 {
			r = r.Reverse()
		}
		out[i] = r
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].From.Compare(out[j].From); c != 0 {
			return c < 0
		}
		if c := out[i].To.Compare(out[j].To); c != 0 {
			return c < 0
		}
		return out[i].Type < out[j].Type
	})
	return out
}

// TestIncrementalDeltaIsLocal pins the perf contract: a single-object change
// in a large corpus must re-score a small neighborhood, not the whole
// candidate set, and must rebuild only the touched components.
func TestIncrementalDeltaIsLocal(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Workers = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	gen := corpusGen{rng: rand.New(rand.NewSource(7))}
	var objs []core.Object
	for id := 0; id < 300; id++ {
		objs = append(objs, gen.object(id))
	}
	inc, err := NewIncremental(ctx, c, objs)
	if err != nil {
		t.Fatal(err)
	}

	totalPairs := len(func() []pairIdx {
		blocks, _ := c.blocks(objs)
		p, _ := c.pairList(objs, blocks)
		return p
	}())

	o := gen.object(300)
	st, err := inc.Apply(ctx, []Change{{Kind: Upsert, Object: o}})
	if err != nil {
		t.Fatal(err)
	}
	if st.PairsRescored == 0 {
		t.Fatalf("upsert rescored nothing: %+v", st)
	}
	if st.PairsRescored >= totalPairs/2 {
		t.Fatalf("delta not local: rescored %d of %d total pairs", st.PairsRescored, totalPairs)
	}
}
