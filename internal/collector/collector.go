package collector

import (
	"context"
	"fmt"
	"sort"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

// Config parameterizes the collector.
type Config struct {
	// IdentityThreshold: pairs scoring at or above it become identity
	// p-relations (the paper's experiments use 0.9).
	IdentityThreshold float64
	// MatchingThreshold: pairs scoring in [MatchingThreshold,
	// IdentityThreshold) become matching p-relations (the paper uses 0.6).
	MatchingThreshold float64
	// MaxBlockSize discards blocks larger than this (tokens too frequent to
	// be discriminating, BLAST-style); default 64.
	MaxBlockSize int
	// Comparators and Weights define the scoring ensemble. Nil selects the
	// default ensemble with uniform weights.
	Comparators []Comparator
	Weights     []float64
	// Workers is the number of goroutines scoring candidate pairs (0 selects
	// GOMAXPROCS, 1 forces a sequential run). The worker count never changes
	// the output — only the wall time.
	Workers int
	// Progress, when non-nil, is called as scored blocks complete, at most
	// once per decile of the total pair count, with the number of blocks
	// fully scored so far and the total. Calls are serialized but may come
	// from scoring goroutines.
	Progress func(done, total int)
}

// DefaultConfig mirrors the paper's thresholds.
func DefaultConfig() Config {
	return Config{IdentityThreshold: 0.9, MatchingThreshold: 0.6, MaxBlockSize: 64}
}

func (c Config) withDefaults() (Config, error) {
	if c.IdentityThreshold <= 0 || c.IdentityThreshold > 1 {
		return c, fmt.Errorf("collector: identity threshold %g outside (0, 1]", c.IdentityThreshold)
	}
	if c.MatchingThreshold <= 0 || c.MatchingThreshold >= c.IdentityThreshold {
		return c, fmt.Errorf("collector: matching threshold %g must be in (0, %g)", c.MatchingThreshold, c.IdentityThreshold)
	}
	if c.MaxBlockSize <= 0 {
		c.MaxBlockSize = 64
	}
	if len(c.Comparators) == 0 {
		c.Comparators = []Comparator{TokenJaccard{}, FieldOverlap{}, Levenshtein{}, NumericProximity{}}
	}
	if len(c.Weights) == 0 {
		c.Weights = make([]float64, len(c.Comparators))
		for i := range c.Weights {
			c.Weights[i] = 1
		}
	}
	if len(c.Weights) != len(c.Comparators) {
		return c, fmt.Errorf("collector: %d weights for %d comparators", len(c.Weights), len(c.Comparators))
	}
	return c, nil
}

// Collector discovers p-relations between data objects.
type Collector struct {
	cfg Config
}

// New creates a collector. Invalid configurations are rejected.
func New(cfg Config) (*Collector, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Collector{cfg: cfg}, nil
}

// Score computes the weighted ensemble similarity of two objects in [0, 1].
func (c *Collector) Score(a, b core.Object) float64 {
	var sum, wsum float64
	for i, cmp := range c.cfg.Comparators {
		w := c.cfg.Weights[i]
		if w == 0 {
			continue
		}
		sum += w * cmp.Compare(a, b)
		wsum += w
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// Blocks partitions objects into candidate blocks: objects sharing a token
// land in the same block; blocks exceeding MaxBlockSize are dropped as
// non-discriminating (frequency-based stop tokens). The result maps each
// blocking token to the indexes of its objects, in deterministic order.
func (c *Collector) Blocks(objects []core.Object) map[string][]int {
	blocks, _ := c.blocks(objects)
	return blocks
}

// blocks is Blocks plus a count of the oversized blocks dropped (the
// telemetry and build stats distinguish them from the sub-2-member blocks,
// which carry no candidate pairs to lose).
func (c *Collector) blocks(objects []core.Object) (map[string][]int, int) {
	byToken := map[string][]int{}
	for i, o := range objects {
		seen := map[string]bool{}
		for tok := range tokenSet(o) {
			if !seen[tok] {
				seen[tok] = true
				byToken[tok] = append(byToken[tok], i)
			}
		}
	}
	dropped := 0
	for tok, members := range byToken {
		if len(members) > c.cfg.MaxBlockSize {
			dropped++
			delete(byToken, tok)
			continue
		}
		if len(members) < 2 {
			delete(byToken, tok)
			continue
		}
		sort.Ints(members)
	}
	return byToken, dropped
}

// Run executes the full pipeline — blocking, pairwise matching,
// thresholding and local deduplication — and returns the discovered
// p-relations, deterministically ordered. Scoring is spread over
// Config.Workers goroutines; the output is identical for every worker
// count.
func (c *Collector) Run(ctx context.Context, objects []core.Object) ([]core.PRelation, error) {
	rels, _, err := c.RunWithStats(ctx, objects)
	return rels, err
}

func clampProb(p float64) float64 {
	if p > 1 {
		return 1
	}
	return p
}

// claimBeats is the deduplication winner order: higher probability first,
// ties broken by the canonical (direction-normalized) endpoint pair. The
// order is total over distinct relations, which makes dedupeIdentities a pure
// function of the relation SET — independent of input order — so the
// incremental collector can re-run it over its maintained raw set and land on
// exactly the claims a from-scratch pipeline run would keep.
func claimBeats(a, b core.PRelation) bool {
	if a.Prob != b.Prob {
		return a.Prob > b.Prob
	}
	alo, ahi := normPair(a)
	blo, bhi := normPair(b)
	if c := alo.Compare(blo); c != 0 {
		return c < 0
	}
	return ahi.Compare(bhi) < 0
}

// normPair returns the relation's endpoints in canonical order.
func normPair(r core.PRelation) (core.GlobalKey, core.GlobalKey) {
	if r.From.Compare(r.To) <= 0 {
		return r.From, r.To
	}
	return r.To, r.From
}

// dedupeIdentities enforces the paper's rule: "two different data objects
// belonging to the same dataset cannot participate to an identity p-relation
// with the same object in a different database" (deduplication is a local
// responsibility). When several objects of one dataset claim identity with
// the same foreign object, only the highest-probability relation survives;
// the losers are dropped entirely, as the paper keeps "the p-relations with
// higher probability only".
func (c *Collector) dedupeIdentities(rels []core.PRelation) []core.PRelation {
	// Group identity claims by (foreign object, claiming dataset).
	type claimKey struct {
		object  core.GlobalKey
		dataset string // database.collection of the claiming side
	}
	best := map[claimKey]core.PRelation{}
	keep := make([]core.PRelation, 0, len(rels))
	for _, r := range rels {
		if r.Type != core.Identity {
			keep = append(keep, r)
			continue
		}
		for _, dir := range [2][2]core.GlobalKey{{r.From, r.To}, {r.To, r.From}} {
			claimer, object := dir[0], dir[1]
			if claimer.Database == object.Database {
				continue // rule applies across databases only
			}
			k := claimKey{object: object, dataset: claimer.Database + "." + claimer.Collection}
			old, ok := best[k]
			if !ok || claimBeats(r, old) {
				best[k] = r
			}
		}
	}
	surviving := func(r core.PRelation) bool {
		for _, dir := range [2][2]core.GlobalKey{{r.From, r.To}, {r.To, r.From}} {
			claimer, object := dir[0], dir[1]
			if claimer.Database == object.Database {
				continue
			}
			k := claimKey{object: object, dataset: claimer.Database + "." + claimer.Collection}
			if winner, ok := best[k]; ok && winner != r {
				return false
			}
		}
		return true
	}
	for _, r := range rels {
		if r.Type == core.Identity && !surviving(r) {
			continue
		}
		if r.Type == core.Identity {
			keep = append(keep, r)
		}
	}
	return keep
}

// BuildIndex runs the pipeline and loads the result into a fresh A' index.
// Loading goes through aindex.BulkLoad: the consistency-condition closure is
// computed offline per connected component and the adjacency installed in
// one locked swap, instead of one locked Insert per relation.
func (c *Collector) BuildIndex(ctx context.Context, objects []core.Object) (*aindex.Index, []core.PRelation, error) {
	ix, rels, _, err := c.BuildIndexWithStats(ctx, objects)
	return ix, rels, err
}

// BuildIndexWithStats is BuildIndex plus a summary of the build work.
// Elapsed covers the whole build, bulk load included.
func (c *Collector) BuildIndexWithStats(ctx context.Context, objects []core.Object) (*aindex.Index, []core.PRelation, BuildStats, error) {
	start := time.Now()
	rels, stats, err := c.RunWithStats(ctx, objects)
	if err != nil {
		return nil, nil, stats, err
	}
	ix, err := aindex.BulkLoadWorkers(rels, c.cfg.Workers)
	if err != nil {
		return nil, nil, stats, fmt.Errorf("collector: bulk load: %w", err)
	}
	stats.Elapsed = time.Since(start)
	return ix, rels, stats, nil
}
