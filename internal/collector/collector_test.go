package collector

import (
	"context"
	"testing"

	"quepa/internal/core"
)

var ctx = context.Background()

func obj(gk string, fields map[string]string) core.Object {
	return core.NewObject(core.MustParseGlobalKey(gk), fields)
}

// fixture returns objects representing the same few albums across three
// databases, plus unrelated noise.
func fixture() []core.Object {
	return []core.Object{
		obj("transactions.inventory.a32", map[string]string{"artist": "The Cure", "name": "Wish", "price": "18.5"}),
		obj("catalogue.albums.d1", map[string]string{"artist": "The Cure", "title": "Wish", "year": "1992"}),
		obj("discount.drop.k1:cure:wish", map[string]string{"value": "The Cure Wish 40%"}),
		obj("transactions.inventory.a34", map[string]string{"artist": "Radiohead", "name": "OK Computer", "price": "21.0"}),
		obj("catalogue.albums.d3", map[string]string{"artist": "Radiohead", "title": "OK Computer", "year": "1997"}),
		obj("catalogue.albums.d4", map[string]string{"artist": "Portishead", "title": "Dummy", "year": "1994"}),
		obj("transactions.sales.s8", map[string]string{"customer": "John Doe", "total": "20.0"}),
	}
}

func TestBlocksGroupRelatedObjects(t *testing.T) {
	c, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	objects := fixture()
	blocks := c.Blocks(objects)
	// The "cure" token must group the three Cure objects.
	cure, ok := blocks["cure"]
	if !ok {
		t.Fatalf("no block for token 'cure': %v", blocks)
	}
	if len(cure) != 3 {
		t.Errorf("cure block = %v, want 3 members", cure)
	}
	// Singleton blocks are dropped.
	for tok, members := range blocks {
		if len(members) < 2 {
			t.Errorf("block %q kept with %d members", tok, len(members))
		}
	}
}

func TestBlocksDropOversized(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBlockSize = 2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	blocks := c.Blocks(fixture())
	for tok, members := range blocks {
		if len(members) > 2 {
			t.Errorf("oversized block %q survived: %v", tok, members)
		}
	}
}

func TestRunFindsCrossStoreRelations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdentityThreshold = 0.5
	cfg.MatchingThreshold = 0.2
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rels, err := c.Run(ctx, fixture())
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("no p-relations found")
	}
	// The Cure album in transactions and catalogue must be related.
	found := false
	for _, r := range rels {
		a, b := r.From.String(), r.To.String()
		if (a == "catalogue.albums.d1" && b == "transactions.inventory.a32") ||
			(b == "catalogue.albums.d1" && a == "transactions.inventory.a32") {
			found = true
		}
		if err := r.Validate(); err != nil {
			t.Errorf("invalid relation produced: %v", err)
		}
	}
	if !found {
		t.Errorf("Wish album pair not linked; got %v", rels)
	}
	// Unrelated pair must not be linked strongly.
	for _, r := range rels {
		a, b := r.From.String(), r.To.String()
		if (a == "transactions.sales.s8" || b == "transactions.sales.s8") && r.Type == core.Identity {
			t.Errorf("noise object got an identity relation: %v", r)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdentityThreshold = 0.5
	cfg.MatchingThreshold = 0.2
	c, _ := New(cfg)
	r1, err := c.Run(ctx, fixture())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Run(ctx, fixture())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatalf("non-deterministic result size: %d vs %d", len(r1), len(r2))
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Errorf("relation %d differs: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestDedupeRule(t *testing.T) {
	// Two objects of the same dataset claiming identity with the same
	// foreign object: only the stronger claim survives.
	c, _ := New(DefaultConfig())
	gk := core.MustParseGlobalKey
	rels := []core.PRelation{
		core.NewIdentity(gk("catalogue.albums.d1"), gk("transactions.inventory.a32"), 0.95),
		core.NewIdentity(gk("catalogue.albums.d9"), gk("transactions.inventory.a32"), 0.91),
		core.NewMatching(gk("catalogue.albums.d9"), gk("transactions.inventory.a32"), 0.7),
	}
	out := c.dedupeIdentities(rels)
	identities := 0
	for _, r := range out {
		if r.Type == core.Identity {
			identities++
			if r.From != gk("catalogue.albums.d1") {
				t.Errorf("weaker identity survived: %v", r)
			}
		}
	}
	if identities != 1 {
		t.Errorf("identities after dedupe = %d, want 1", identities)
	}
	// The matching relation is untouched by the rule.
	foundMatching := false
	for _, r := range out {
		if r.Type == core.Matching {
			foundMatching = true
		}
	}
	if !foundMatching {
		t.Error("matching relation dropped by identity dedupe")
	}
}

func TestDedupeSameDatabaseExempt(t *testing.T) {
	c, _ := New(DefaultConfig())
	gk := core.MustParseGlobalKey
	// Identities within one database are a local concern: rule not applied.
	rels := []core.PRelation{
		core.NewIdentity(gk("db.t1.a"), gk("db.t2.x"), 0.95),
		core.NewIdentity(gk("db.t1.b"), gk("db.t2.x"), 0.91),
	}
	out := c.dedupeIdentities(rels)
	if len(out) != 2 {
		t.Errorf("same-database identities deduped: %v", out)
	}
}

func TestBuildIndex(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdentityThreshold = 0.5
	cfg.MatchingThreshold = 0.2
	c, _ := New(cfg)
	ix, rels, err := c.BuildIndex(ctx, fixture())
	if err != nil {
		t.Fatal(err)
	}
	if ix.EdgeCount() < len(rels) {
		t.Errorf("index has %d edges for %d relations", ix.EdgeCount(), len(rels))
	}
	if err := ix.Validate(); err != nil {
		t.Errorf("built index invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{IdentityThreshold: 0, MatchingThreshold: 0.5},
		{IdentityThreshold: 1.5, MatchingThreshold: 0.5},
		{IdentityThreshold: 0.9, MatchingThreshold: 0},
		{IdentityThreshold: 0.6, MatchingThreshold: 0.9},
		{IdentityThreshold: 0.9, MatchingThreshold: 0.6, Comparators: []Comparator{TokenJaccard{}}, Weights: []float64{1, 2}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	c, _ := New(DefaultConfig())
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Run(cancelled, fixture()); err == nil {
		t.Error("cancelled Run should fail")
	}
}

func TestScoreSymmetric(t *testing.T) {
	c, _ := New(DefaultConfig())
	objs := fixture()
	for i := range objs {
		for j := range objs {
			a, b := c.Score(objs[i], objs[j]), c.Score(objs[j], objs[i])
			if diff := a - b; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("asymmetric score for (%d, %d): %g vs %g", i, j, a, b)
			}
			if a < 0 || a > 1 {
				t.Errorf("score out of range: %g", a)
			}
		}
	}
	// Self-similarity is maximal.
	if s := c.Score(objs[0], objs[0]); s < 0.99 {
		t.Errorf("self score = %g", s)
	}
}

func TestTuneImprovesF1(t *testing.T) {
	cfg := DefaultConfig()
	// Start with weights that emphasize the useless numeric comparator.
	cfg.Comparators = []Comparator{NumericProximity{}, TokenJaccard{}, FieldOverlap{}, Levenshtein{}}
	cfg.Weights = []float64{10, 0.1, 0.1, 0.1}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	objs := fixture()
	pairs := []LabeledPair{
		{A: objs[0], B: objs[1], Match: true},  // Wish in transactions vs catalogue
		{A: objs[3], B: objs[4], Match: true},  // OK Computer pair
		{A: objs[0], B: objs[5], Match: false}, // Wish vs Dummy
		{A: objs[0], B: objs[6], Match: false}, // Wish vs sale
		{A: objs[4], B: objs[6], Match: false},
		{A: objs[1], B: objs[3], Match: false},
	}
	before := c.evalF1(pairs, cfg.Weights, 0.5)
	res, err := c.Tune(pairs, 0.5, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.F1 < before {
		t.Errorf("tuning made F1 worse: %g -> %g", before, res.F1)
	}
	if res.F1 < 0.9 {
		t.Errorf("tuned F1 = %g on an easy task", res.F1)
	}
}

func TestTuneValidation(t *testing.T) {
	c, _ := New(DefaultConfig())
	if _, err := c.Tune(nil, 0.5, 10, 1); err == nil {
		t.Error("empty pairs should fail")
	}
	if _, err := c.Tune([]LabeledPair{{}}, 0, 10, 1); err == nil {
		t.Error("bad threshold should fail")
	}
}

func TestComparatorEdgeCases(t *testing.T) {
	empty := obj("d.c.e", map[string]string{})
	full := obj("d.c.f", map[string]string{"a": "hello world", "n": "42"})
	for _, cmp := range []Comparator{TokenJaccard{}, FieldOverlap{}, Levenshtein{}, NumericProximity{}} {
		if s := cmp.Compare(empty, full); s != 0 {
			t.Errorf("%s on empty object = %g", cmp.Name(), s)
		}
		if s := cmp.Compare(full, full); s < 0 || s > 1 {
			t.Errorf("%s self = %g out of range", cmp.Name(), s)
		}
		if cmp.Name() == "" {
			t.Error("comparator with empty name")
		}
	}
}

func TestLevenshteinSim(t *testing.T) {
	tests := []struct {
		a, b string
		want float64
	}{
		{"abc", "abc", 1},
		{"", "", 1},
		{"abc", "", 0},
		{"", "abc", 0},
		{"kitten", "sitting", 1 - 3.0/7.0},
		{"wish", "fish", 0.75},
	}
	for _, tt := range tests {
		if got := levenshteinSim(tt.a, tt.b); got < tt.want-1e-9 || got > tt.want+1e-9 {
			t.Errorf("levenshteinSim(%q, %q) = %g, want %g", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestNumericSim(t *testing.T) {
	tests := []struct {
		x, y, want float64
	}{
		{5, 5, 1},
		{0, 0, 1},
		{10, 5, 0.5},
		{5, 10, 0.5},
		{-5, 5, 0},
		{100, 1, 0.01},
	}
	for _, tt := range tests {
		if got := numericSim(tt.x, tt.y); got < tt.want-1e-9 || got > tt.want+1e-9 {
			t.Errorf("numericSim(%g, %g) = %g, want %g", tt.x, tt.y, got, tt.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := tokenize("The Cure - Wish (1992)!")
	want := map[string]bool{"the": true, "cure": true, "wish": true, "1992": true}
	if len(got) != len(want) {
		t.Fatalf("tokenize = %v", got)
	}
	for _, tok := range got {
		if !want[tok] {
			t.Errorf("unexpected token %q", tok)
		}
	}
	if toks := tokenize("ab a x"); len(toks) != 0 {
		t.Errorf("short tokens kept: %v", toks)
	}
}
