// Parallel scoring pipeline.
//
// The collector's cost is dominated by the pairwise comparator ensemble, a
// pure function of the two objects. This file turns the sequential
// block-scan into a deterministic parallel pipeline:
//
//  1. the candidate pairs are enumerated once, sequentially, in the
//     canonical order (sorted blocking token, then block position, first
//     occurrence wins) — cheap map work that fixes the output order;
//  2. workers claim fixed-size chunks of that pair list with one atomic
//     increment and score them into disjoint slots, checking cancellation
//     per chunk — so one oversized block can no longer run unbounded after
//     the context is cancelled;
//  3. thresholding is pipelined with scoring: each worker classifies its
//     chunk into a per-chunk relation bucket as it goes, and the buckets
//     are concatenated in chunk order afterwards.
//
// Because the Score ensemble is pure and every pair lands in a fixed slot,
// the relation list entering dedupe is byte-identical for every worker
// count and schedule (TestParallelRunMatchesSequential pins this). It is
// also an improvement over the original sequential pipeline, which fed
// dedupe in map-iteration order and could break probability ties
// differently from run to run.
package collector

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// Pipeline instrumentation handles, resolved once.
var (
	pairsScored = telemetry.NewCounter("quepa_collector_pairs_scored_total",
		"candidate pairs scored by the collector's comparator ensemble")
	blocksDroppedTotal = telemetry.NewCounter("quepa_collector_blocks_dropped_total",
		"blocks discarded as oversized (BLAST-style frequency stop tokens)")
	buildHist = telemetry.NewHistogram("quepa_collector_build_duration_seconds",
		"wall time of full collector pipeline runs (blocking through dedupe)", nil)
)

// chunkSize is the unit of parallel work: workers claim chunks of the
// canonical pair list with one atomic increment, so cancellation is checked
// and progress advances at least every chunkSize scored pairs.
const chunkSize = 256

// BuildStats summarizes one collector pipeline run.
type BuildStats struct {
	Objects       int           // objects scanned into the blocker
	Blocks        int           // blocks retained for scoring
	DroppedBlocks int           // oversized blocks discarded
	PairsScored   int           // unique candidate pairs scored
	Identities    int           // identity p-relations kept after dedupe
	Matchings     int           // matching p-relations kept
	Workers       int           // scoring goroutines used
	Elapsed       time.Duration // wall time of the run
}

// Relations is the total number of p-relations the run produced.
func (s BuildStats) Relations() int { return s.Identities + s.Matchings }

// pairIdx is one candidate pair, as indexes into the object slice.
type pairIdx struct{ i, j int }

// pairList builds the canonical candidate-pair list: blocks in sorted token
// order, pairs in block-position order, each unique pair kept at its first
// occurrence, same-key pairs skipped. blockEnds[k] is the number of pairs
// contributed by the first k+1 blocks; it maps a scored-pair count back to
// a number of fully scored blocks for the progress callback.
func (c *Collector) pairList(objects []core.Object, blocks map[string][]int) ([]pairIdx, []int) {
	tokens := make([]string, 0, len(blocks))
	for tok := range blocks {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	var pairs []pairIdx
	seen := map[pairIdx]bool{}
	blockEnds := make([]int, 0, len(tokens))
	for _, tok := range tokens {
		members := blocks[tok]
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				p := pairIdx{members[x], members[y]}
				if seen[p] {
					continue
				}
				seen[p] = true
				if objects[p.i].GK == objects[p.j].GK {
					continue
				}
				pairs = append(pairs, p)
			}
		}
		blockEnds = append(blockEnds, len(pairs))
	}
	return pairs, blockEnds
}

// RunWithStats is Run plus a summary of the work performed.
func (c *Collector) RunWithStats(ctx context.Context, objects []core.Object) ([]core.PRelation, BuildStats, error) {
	start := time.Now()
	tstart := telemetry.Now()
	if err := ctx.Err(); err != nil {
		return nil, BuildStats{}, err
	}

	blocks, dropped := c.blocks(objects)
	blocksDroppedTotal.Add(uint64(dropped))
	pairs, blockEnds := c.pairList(objects, blocks)

	workers := c.cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunks := (len(pairs) + chunkSize - 1) / chunkSize; workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}

	buckets, err := c.scorePairs(ctx, objects, pairs, blockEnds, workers)
	if err != nil {
		return nil, BuildStats{}, err
	}
	pairsScored.Add(uint64(len(pairs)))

	var rels []core.PRelation
	for _, b := range buckets {
		rels = append(rels, b...)
	}
	rels = c.dedupeIdentities(rels)
	sort.Slice(rels, func(i, j int) bool {
		if c := rels[i].From.Compare(rels[j].From); c != 0 {
			return c < 0
		}
		return rels[i].To.Compare(rels[j].To) < 0
	})

	stats := BuildStats{
		Objects:       len(objects),
		Blocks:        len(blocks),
		DroppedBlocks: dropped,
		PairsScored:   len(pairs),
		Workers:       workers,
		Elapsed:       time.Since(start),
	}
	for _, r := range rels {
		if r.Type == core.Identity {
			stats.Identities++
		} else {
			stats.Matchings++
		}
	}
	buildHist.Since(tstart)
	return rels, stats, nil
}

// scorePairs scores the canonical pair list with the given worker count and
// returns the thresholded relations as one bucket per chunk, in chunk
// order. Each chunk is written by exactly one worker, so no slot is ever
// contended and the concatenated result is independent of scheduling.
func (c *Collector) scorePairs(ctx context.Context, objects []core.Object, pairs []pairIdx, blockEnds []int, workers int) ([][]core.PRelation, error) {
	nChunks := (len(pairs) + chunkSize - 1) / chunkSize
	buckets := make([][]core.PRelation, nChunks)
	prog := newProgress(c.cfg.Progress, len(pairs), blockEnds)

	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(cursor.Add(1)) - 1
				if k >= nChunks {
					return
				}
				// Workers observe cancellation once per chunk, bounding the
				// overrun after cancel to chunkSize scored pairs per worker
				// (the pre-existing pipeline only checked once per block).
				if ctx.Err() != nil {
					return
				}
				lo, hi := k*chunkSize, (k+1)*chunkSize
				if hi > len(pairs) {
					hi = len(pairs)
				}
				var bucket []core.PRelation
				for idx := lo; idx < hi; idx++ {
					p := pairs[idx]
					a, b := objects[p.i], objects[p.j]
					score := c.Score(a, b)
					switch {
					case score >= c.cfg.IdentityThreshold:
						bucket = append(bucket, core.NewIdentity(a.GK, b.GK, clampProb(score)))
					case score >= c.cfg.MatchingThreshold:
						bucket = append(bucket, core.NewMatching(a.GK, b.GK, clampProb(score)))
					}
				}
				buckets[k] = bucket
				prog.add(hi - lo)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return buckets, nil
}

// progress throttles the Progress callback to decile boundaries of the
// total pair count and serializes the calls.
type progress struct {
	fn        func(done, total int)
	total     int
	blockEnds []int
	done      atomic.Int64
	decile    atomic.Int64
	mu        sync.Mutex
}

func newProgress(fn func(done, total int), total int, blockEnds []int) *progress {
	return &progress{fn: fn, total: total, blockEnds: blockEnds}
}

func (p *progress) add(n int) {
	if p.fn == nil || p.total == 0 {
		return
	}
	d := p.done.Add(int64(n))
	newDecile := d * 10 / int64(p.total)
	for {
		cur := p.decile.Load()
		if newDecile <= cur {
			return
		}
		if p.decile.CompareAndSwap(cur, newDecile) {
			p.mu.Lock()
			// Blocks whose cumulative pair count fits inside d are fully
			// scored (chunks complete out of order, but the count is a
			// faithful lower bound once the decile is crossed).
			p.fn(sort.SearchInts(p.blockEnds, int(d)+1), len(p.blockEnds))
			p.mu.Unlock()
			return
		}
	}
}
