package collector

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"quepa/internal/core"
)

// randomObjects generates n objects across three databases with overlapping
// token vocabularies, so blocking produces shared blocks, pairs duplicated
// across blocks, and near-identical objects for the dedupe rule to rank.
func randomObjects(n int, seed int64) []core.Object {
	rng := rand.New(rand.NewSource(seed))
	words := []string{"cure", "wish", "radiohead", "computer", "dummy",
		"portishead", "parade", "mirror", "garden", "echo", "horizon", "velvet"}
	datasets := []string{"transactions.inventory", "catalogue.albums", "discount.drop"}
	out := make([]core.Object, 0, n)
	for i := 0; i < n; i++ {
		gk := core.MustParseGlobalKey(fmt.Sprintf("%s.o%d", datasets[i%len(datasets)], i))
		out = append(out, core.NewObject(gk, map[string]string{
			"title":  words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))],
			"artist": words[rng.Intn(len(words))],
			"price":  fmt.Sprintf("%d.5", rng.Intn(30)),
		}))
	}
	return out
}

// referenceRun is an independent transliteration of the sequential pipeline:
// sorted blocking tokens, block-position pair order, first occurrence wins,
// threshold in enumeration order, then dedupe and the final sort. The
// chunked parallel pipeline must reproduce its output byte for byte.
func referenceRun(c *Collector, objects []core.Object) []core.PRelation {
	blocks := c.Blocks(objects)
	tokens := make([]string, 0, len(blocks))
	for tok := range blocks {
		tokens = append(tokens, tok)
	}
	sort.Strings(tokens)
	type pair struct{ i, j int }
	seen := map[pair]bool{}
	var rels []core.PRelation
	for _, tok := range tokens {
		members := blocks[tok]
		for x := 0; x < len(members); x++ {
			for y := x + 1; y < len(members); y++ {
				p := pair{members[x], members[y]}
				if seen[p] {
					continue
				}
				seen[p] = true
				a, b := objects[p.i], objects[p.j]
				if a.GK == b.GK {
					continue
				}
				score := c.Score(a, b)
				switch {
				case score >= c.cfg.IdentityThreshold:
					rels = append(rels, core.NewIdentity(a.GK, b.GK, clampProb(score)))
				case score >= c.cfg.MatchingThreshold:
					rels = append(rels, core.NewMatching(a.GK, b.GK, clampProb(score)))
				}
			}
		}
	}
	rels = c.dedupeIdentities(rels)
	sort.Slice(rels, func(i, j int) bool {
		if cmp := rels[i].From.Compare(rels[j].From); cmp != 0 {
			return cmp < 0
		}
		return rels[i].To.Compare(rels[j].To) < 0
	})
	return rels
}

// TestParallelRunMatchesSequential pins the tentpole invariant: the chunked
// parallel pipeline produces relations byte-identical (keys, types and
// float64 probabilities compared exactly) to the sequential reference, for
// every worker count, across seeds.
func TestParallelRunMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		objects := randomObjects(120, seed)
		for _, workers := range []int{1, 2, 5, 9} {
			cfg := DefaultConfig()
			cfg.IdentityThreshold = 0.5
			cfg.MatchingThreshold = 0.2
			cfg.Workers = workers
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := referenceRun(c, objects)
			got, stats, err := c.RunWithStats(ctx, objects)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d workers %d: %d rels, want %d", seed, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("seed %d workers %d: rel %d = %+v, want %+v", seed, workers, i, got[i], want[i])
				}
			}
			if stats.Relations() != len(got) {
				t.Errorf("stats count %d relations, got %d", stats.Relations(), len(got))
			}
		}
	}
}

func TestRunWithStats(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IdentityThreshold = 0.5
	cfg.MatchingThreshold = 0.2
	cfg.Workers = 3
	c, _ := New(cfg)
	rels, stats, err := c.RunWithStats(ctx, fixture())
	if err != nil {
		t.Fatal(err)
	}
	if stats.Objects != len(fixture()) {
		t.Errorf("Objects = %d, want %d", stats.Objects, len(fixture()))
	}
	if stats.Blocks == 0 || stats.PairsScored == 0 {
		t.Errorf("empty work summary: %+v", stats)
	}
	if stats.Workers < 1 || stats.Workers > 3 {
		t.Errorf("Workers = %d outside [1, 3]", stats.Workers)
	}
	if stats.Relations() != len(rels) {
		t.Errorf("Relations() = %d for %d rels", stats.Relations(), len(rels))
	}
	if stats.Elapsed <= 0 {
		t.Errorf("Elapsed = %v", stats.Elapsed)
	}
}

func TestBlocksDroppedCount(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBlockSize = 2
	c, _ := New(cfg)
	_, dropped := c.blocks(fixture())
	if dropped == 0 {
		t.Error("fixture has a 3-member 'cure' block; MaxBlockSize 2 should drop it")
	}
}

// TestProgressDeciles verifies the progress callback fires at most once per
// decile, with monotonically increasing completed-block counts, ending at
// the full block count.
func TestProgressDeciles(t *testing.T) {
	var mu sync.Mutex
	var calls [][2]int
	cfg := DefaultConfig()
	cfg.IdentityThreshold = 0.5
	cfg.MatchingThreshold = 0.2
	cfg.Workers = 1
	cfg.Progress = func(done, total int) {
		mu.Lock()
		calls = append(calls, [2]int{done, total})
		mu.Unlock()
	}
	c, _ := New(cfg)
	objects := randomObjects(120, 5)
	if _, _, err := c.RunWithStats(ctx, objects); err != nil {
		t.Fatal(err)
	}
	if len(calls) == 0 || len(calls) > 10 {
		t.Fatalf("%d progress calls, want 1..10", len(calls))
	}
	total := calls[0][1]
	prev := -1
	for _, call := range calls {
		if call[1] != total {
			t.Errorf("total changed mid-run: %v", calls)
		}
		if call[0] < prev {
			t.Errorf("done went backwards: %v", calls)
		}
		prev = call[0]
	}
	if last := calls[len(calls)-1]; last[0] != last[1] {
		t.Errorf("final progress %d/%d, want completion", last[0], last[1])
	}
}

// TestCancellationMidScoring cancels the context from the first progress
// callback — i.e. while workers are mid-pipeline — and expects the error to
// propagate out of every worker within a chunk's worth of pairs.
func TestCancellationMidScoring(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := DefaultConfig()
	cfg.IdentityThreshold = 0.5
	cfg.MatchingThreshold = 0.2
	cfg.Workers = 2
	cfg.Progress = func(done, total int) { cancel() }
	c, _ := New(cfg)
	objects := randomObjects(200, 11)
	if _, _, err := c.RunWithStats(cctx, objects); err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
