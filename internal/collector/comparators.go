// Package collector implements the Collector component of QUEPA (Section
// III-D): it discovers p-relations between the data objects of a polystore
// and loads them into the A' index.
//
// The paper uses two off-the-shelf tools as black boxes — BLAST for
// unsupervised blocking and Duke for pairwise matching with a genetic
// configuration tuner. This package substitutes both with self-contained
// equivalents: token-based blocking with frequency-based stop tokens, and a
// weighted ensemble of string/numeric similarity comparators whose weights
// can be tuned by hill climbing on labeled pairs. Scores at or above the
// identity threshold become identity p-relations; scores in the matching
// band become matching p-relations; and the paper's local-deduplication rule
// (at most one identity partner per foreign dataset) is enforced at the end.
package collector

import (
	"strconv"
	"strings"

	"quepa/internal/core"
)

// Comparator scores the similarity of two data objects in [0, 1].
type Comparator interface {
	Name() string
	Compare(a, b core.Object) float64
}

// TokenJaccard compares the token sets of all field values.
type TokenJaccard struct{}

// Name implements Comparator.
func (TokenJaccard) Name() string { return "token-jaccard" }

// Compare implements Comparator.
func (TokenJaccard) Compare(a, b core.Object) float64 {
	ta := tokenSet(a)
	tb := tokenSet(b)
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	inter := 0
	for tok := range ta {
		if tb[tok] {
			inter++
		}
	}
	union := len(ta) + len(tb) - inter
	return float64(inter) / float64(union)
}

// FieldOverlap measures how many exact field values the objects share,
// regardless of the field names (objects from different engines name their
// attributes differently).
type FieldOverlap struct{}

// Name implements Comparator.
func (FieldOverlap) Name() string { return "field-overlap" }

// Compare implements Comparator.
func (FieldOverlap) Compare(a, b core.Object) float64 {
	if len(a.Fields) == 0 || len(b.Fields) == 0 {
		return 0
	}
	values := map[string]bool{}
	for _, v := range a.Fields {
		if v = normalize(v); v != "" {
			values[v] = true
		}
	}
	shared := 0
	seen := map[string]bool{}
	for _, v := range b.Fields {
		if v = normalize(v); v != "" && values[v] && !seen[v] {
			shared++
			seen[v] = true
		}
	}
	smaller := len(a.Fields)
	if len(b.Fields) < smaller {
		smaller = len(b.Fields)
	}
	return float64(shared) / float64(smaller)
}

// Levenshtein compares the best-matching field values by edit distance.
// For each field of the smaller object it finds the closest field of the
// other and averages the normalized similarities.
type Levenshtein struct{}

// Name implements Comparator.
func (Levenshtein) Name() string { return "levenshtein" }

// Compare implements Comparator.
func (Levenshtein) Compare(a, b core.Object) float64 {
	av := fieldValues(a)
	bv := fieldValues(b)
	if len(av) == 0 || len(bv) == 0 {
		return 0
	}
	// Average both directions so the comparator is symmetric.
	return (bestMatchAvg(av, bv, levenshteinSim) + bestMatchAvg(bv, av, levenshteinSim)) / 2
}

// bestMatchAvg matches each element of xs to its most similar element of ys
// and averages the similarities.
func bestMatchAvg[T any](xs, ys []T, sim func(T, T) float64) float64 {
	total := 0.0
	for _, x := range xs {
		best := 0.0
		for _, y := range ys {
			if s := sim(x, y); s > best {
				best = s
			}
		}
		total += best
	}
	return total / float64(len(xs))
}

// NumericProximity compares the numeric field values of the two objects:
// each number of the smaller set is matched to the closest number of the
// other, scored by relative distance.
type NumericProximity struct{}

// Name implements Comparator.
func (NumericProximity) Name() string { return "numeric-proximity" }

// Compare implements Comparator.
func (NumericProximity) Compare(a, b core.Object) float64 {
	na := numericValues(a)
	nb := numericValues(b)
	if len(na) == 0 || len(nb) == 0 {
		return 0
	}
	return (bestMatchAvg(na, nb, numericSim) + bestMatchAvg(nb, na, numericSim)) / 2
}

func numericSim(x, y float64) float64 {
	if x == y {
		return 1
	}
	ax, ay := x, y
	if ax < 0 {
		ax = -ax
	}
	if ay < 0 {
		ay = -ay
	}
	maxAbs := ax
	if ay > maxAbs {
		maxAbs = ay
	}
	if maxAbs == 0 {
		return 1
	}
	d := (x - y) / maxAbs
	if d < 0 {
		d = -d
	}
	if d > 1 {
		return 0
	}
	return 1 - d
}

func normalize(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// tokenSet extracts the lowercase alphanumeric tokens (length >= 3) of all
// field values of an object.
func tokenSet(o core.Object) map[string]bool {
	out := map[string]bool{}
	for _, v := range o.Fields {
		for _, tok := range tokenize(v) {
			out[tok] = true
		}
	}
	return out
}

func tokenize(s string) []string {
	var out []string
	var cur strings.Builder
	flush := func() {
		if cur.Len() >= 3 {
			out = append(out, strings.ToLower(cur.String()))
		}
		cur.Reset()
	}
	for _, r := range s {
		if r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
			cur.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return out
}

func fieldValues(o core.Object) []string {
	out := make([]string, 0, len(o.Fields))
	for _, name := range o.FieldNames() {
		v := normalize(o.Fields[name])
		if v != "" {
			out = append(out, v)
		}
	}
	return out
}

func numericValues(o core.Object) []float64 {
	var out []float64
	for _, name := range o.FieldNames() {
		if f, err := strconv.ParseFloat(strings.TrimSpace(o.Fields[name]), 64); err == nil {
			out = append(out, f)
		}
	}
	return out
}

// levenshteinSim is 1 - dist/maxLen, with a two-row dynamic program.
func levenshteinSim(a, b string) float64 {
	if a == b {
		return 1
	}
	la, lb := len(a), len(b)
	if la == 0 || lb == 0 {
		return 0
	}
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		cur[0] = i
		for j := 1; j <= lb; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1              // deletion
			if v := cur[j-1] + 1; v < m { // insertion
				m = v
			}
			if v := prev[j-1] + cost; v < m { // substitution
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	maxLen := la
	if lb > maxLen {
		maxLen = lb
	}
	return 1 - float64(prev[lb])/float64(maxLen)
}
