package collector

import (
	"fmt"
	"math/rand"

	"quepa/internal/core"
)

// This file substitutes Duke's genetic configuration tuner with a simple
// stochastic hill climber: given labeled example pairs, it searches the
// comparator-weight space for the weights that maximize F1 of the implied
// classifier (score >= threshold means "same entity").

// LabeledPair is a ground-truth example for weight tuning.
type LabeledPair struct {
	A, B  core.Object
	Match bool // whether A and B refer to the same real-world entity
}

// TuneResult is the outcome of a tuning run.
type TuneResult struct {
	Weights []float64
	F1      float64
}

// Tune searches comparator weights by stochastic hill climbing, maximizing
// F1 at the given decision threshold over the labeled pairs. The collector's
// weights are updated to the best found; the result reports them and their
// F1 score.
func (c *Collector) Tune(pairs []LabeledPair, threshold float64, iterations int, seed int64) (TuneResult, error) {
	if len(pairs) == 0 {
		return TuneResult{}, fmt.Errorf("collector: no labeled pairs to tune on")
	}
	if threshold <= 0 || threshold > 1 {
		return TuneResult{}, fmt.Errorf("collector: threshold %g outside (0, 1]", threshold)
	}
	if iterations <= 0 {
		iterations = 200
	}
	rng := rand.New(rand.NewSource(seed))

	best := append([]float64(nil), c.cfg.Weights...)
	bestF1 := c.evalF1(pairs, best, threshold)

	for it := 0; it < iterations; it++ {
		candidate := append([]float64(nil), best...)
		if rng.Float64() < 0.1 {
			// Occasional random restart to escape local optima.
			for i := range candidate {
				candidate[i] = rng.Float64()
			}
		} else {
			// Perturb one weight multiplicatively.
			i := rng.Intn(len(candidate))
			candidate[i] *= 0.5 + rng.Float64()*1.5
			if candidate[i] > 10 {
				candidate[i] = 10
			}
		}
		if f1 := c.evalF1(pairs, candidate, threshold); f1 > bestF1 {
			bestF1 = f1
			best = candidate
		}
	}
	c.cfg.Weights = best
	return TuneResult{Weights: best, F1: bestF1}, nil
}

// evalF1 scores a weight vector: F1 of "score >= threshold" against the
// labels.
func (c *Collector) evalF1(pairs []LabeledPair, weights []float64, threshold float64) float64 {
	saved := c.cfg.Weights
	c.cfg.Weights = weights
	defer func() { c.cfg.Weights = saved }()

	tp, fp, fn := 0, 0, 0
	for _, p := range pairs {
		predicted := c.Score(p.A, p.B) >= threshold
		switch {
		case predicted && p.Match:
			tp++
		case predicted && !p.Match:
			fp++
		case !predicted && p.Match:
			fn++
		}
	}
	if tp == 0 {
		return 0
	}
	precision := float64(tp) / float64(tp+fp)
	recall := float64(tp) / float64(tp+fn)
	return 2 * precision * recall / (precision + recall)
}
