// Package memlimit models the bounded memory of the middleware baselines.
//
// The paper's Fig. 13 marks with a red 'X' the points where Metamodel,
// Talend or ArangoDB run out of memory: those systems materialize
// intermediate results (unified rows, ETL stages, an in-memory multi-model
// image of the whole polystore), so their footprint grows with data size and
// store count until the JVM/process dies. Re-creating a real OOM kill is
// neither portable nor desirable in a test suite, so the baselines account
// every materialized row against an explicit budget and fail with
// ErrOutOfMemory when they exceed it — same crossover, deterministic and
// observable.
package memlimit

import (
	"errors"
	"fmt"
	"sync"

	"quepa/internal/core"
)

// ErrOutOfMemory is returned (wrapped) when an allocation exceeds the budget.
var ErrOutOfMemory = errors.New("memlimit: out of memory")

// Accountant tracks memory use against a budget. It is safe for concurrent
// use. A zero budget means unlimited.
type Accountant struct {
	mu     sync.Mutex
	budget int64
	used   int64
	peak   int64
}

// New creates an accountant with the given budget in bytes (0 = unlimited).
func New(budget int64) *Accountant {
	if budget < 0 {
		budget = 0
	}
	return &Accountant{budget: budget}
}

// Alloc charges n bytes, failing when the budget would be exceeded. A failed
// allocation charges nothing.
func (a *Accountant) Alloc(n int64) error {
	if n < 0 {
		return fmt.Errorf("memlimit: negative allocation %d", n)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.budget > 0 && a.used+n > a.budget {
		return fmt.Errorf("memlimit: allocating %d bytes with %d/%d used: %w", n, a.used, a.budget, ErrOutOfMemory)
	}
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	return nil
}

// Free releases n bytes (clamped at zero).
func (a *Accountant) Free(n int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used -= n
	if a.used < 0 {
		a.used = 0
	}
}

// Reset releases everything (e.g. the baseline process is restarted).
// The peak statistic is kept.
func (a *Accountant) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.used = 0
}

// Used returns the current footprint in bytes.
func (a *Accountant) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the highest footprint observed.
func (a *Accountant) Peak() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// Budget returns the configured budget (0 = unlimited).
func (a *Accountant) Budget() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budget
}

// ObjectCost approximates the bytes a materialized data object occupies in a
// middleware's unified representation: a fixed row overhead plus field data.
func ObjectCost(o core.Object) int64 {
	cost := int64(96) // row header, key, bookkeeping
	cost += int64(len(o.GK.Database) + len(o.GK.Collection) + len(o.GK.Key))
	for k, v := range o.Fields {
		cost += int64(len(k) + len(v) + 32)
	}
	return cost
}

// EdgeCost approximates the bytes one materialized p-relation occupies.
func EdgeCost(r core.PRelation) int64 {
	return int64(64 +
		len(r.From.Database) + len(r.From.Collection) + len(r.From.Key) +
		len(r.To.Database) + len(r.To.Collection) + len(r.To.Key))
}
