package memlimit

import (
	"errors"
	"testing"

	"quepa/internal/core"
)

func TestAllocWithinBudget(t *testing.T) {
	a := New(100)
	if err := a.Alloc(60); err != nil {
		t.Fatal(err)
	}
	if err := a.Alloc(40); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 100 {
		t.Errorf("Used = %d", a.Used())
	}
}

func TestAllocOverBudget(t *testing.T) {
	a := New(100)
	if err := a.Alloc(90); err != nil {
		t.Fatal(err)
	}
	err := a.Alloc(11)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// Failed allocation charges nothing.
	if a.Used() != 90 {
		t.Errorf("Used after failed alloc = %d", a.Used())
	}
}

func TestUnlimitedBudget(t *testing.T) {
	a := New(0)
	if err := a.Alloc(1 << 40); err != nil {
		t.Errorf("unlimited budget rejected: %v", err)
	}
	neg := New(-10)
	if neg.Budget() != 0 {
		t.Errorf("negative budget = %d", neg.Budget())
	}
}

func TestFreeAndReset(t *testing.T) {
	a := New(100)
	a.Alloc(80)
	a.Free(30)
	if a.Used() != 50 {
		t.Errorf("Used after free = %d", a.Used())
	}
	a.Free(1000) // clamped
	if a.Used() != 0 {
		t.Errorf("Used after overfree = %d", a.Used())
	}
	a.Alloc(70)
	a.Reset()
	if a.Used() != 0 {
		t.Errorf("Used after reset = %d", a.Used())
	}
	if a.Peak() != 80 {
		t.Errorf("Peak = %d, want 80", a.Peak())
	}
}

func TestNegativeAlloc(t *testing.T) {
	a := New(100)
	if err := a.Alloc(-1); err == nil {
		t.Error("negative alloc should fail")
	}
}

func TestCosts(t *testing.T) {
	o := core.NewObject(core.MustParseGlobalKey("db.coll.key"), map[string]string{"a": "hello"})
	if c := ObjectCost(o); c <= 96 {
		t.Errorf("ObjectCost = %d", c)
	}
	bigger := core.NewObject(o.GK, map[string]string{"a": "hello", "b": "world"})
	if ObjectCost(bigger) <= ObjectCost(o) {
		t.Error("ObjectCost not monotone in fields")
	}
	r := core.NewIdentity(o.GK, core.MustParseGlobalKey("x.y.z"), 0.9)
	if c := EdgeCost(r); c <= 64 {
		t.Errorf("EdgeCost = %d", c)
	}
}
