// Package middleware defines the common surface of the baseline systems the
// paper compares QUEPA against in Section VII-D — Apache Metamodel, Talend
// Open Studio and ArangoDB — together with shared helpers. Each baseline is
// a behavioural emulation: it executes real augmentation work over the real
// polystore/engines, while reproducing the architectural cost profile the
// paper attributes to the original tool (unified row conversion, staged ETL
// materialization, full in-memory import with warm-up) through explicit
// memory accounting (package memlimit) and deterministic processing costs.
package middleware

import (
	"context"
	"fmt"

	"quepa/internal/augment"
	"quepa/internal/core"
)

// System is a baseline that can answer augmented queries; Fig. 13 sweeps
// over implementations of this interface plus QUEPA itself.
type System interface {
	// Name is the label used in the paper's plots (e.g. "META-NAT").
	Name() string
	// Augment runs the equivalent of an augmented search.
	Augment(ctx context.Context, database, query string, level int) (*augment.Answer, error)
	// ColdStart resets the system to its just-started state (drops caches
	// and imports; the next query pays any warm-up cost).
	ColdStart()
}

// ScanQuery returns the native query that retrieves every object of a
// collection for the given store kind. Middleware tools pull whole
// collections through exactly such scans when materializing data.
func ScanQuery(kind core.StoreKind, collection string) (string, error) {
	switch kind {
	case core.KindRelational:
		return "SELECT * FROM " + collection, nil
	case core.KindDocument:
		return collection + ".find({})", nil
	case core.KindKeyValue:
		return "SCAN " + collection, nil
	case core.KindGraph:
		return fmt.Sprintf("MATCH (n:%s) RETURN n", collection), nil
	default:
		return "", fmt.Errorf("middleware: unknown store kind %v", kind)
	}
}

// ScanAll retrieves every object of every collection of a store.
func ScanAll(ctx context.Context, s core.Store) ([]core.Object, error) {
	var out []core.Object
	for _, coll := range s.Collections() {
		q, err := ScanQuery(s.Kind(), coll)
		if err != nil {
			return nil, err
		}
		objs, err := s.Query(ctx, q)
		if err != nil {
			return nil, fmt.Errorf("middleware: scanning %s.%s: %w", s.Name(), coll, err)
		}
		out = append(out, objs...)
	}
	return out, nil
}
