package middleware

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/middleware/memlimit"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/graphstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
)

var ctx = context.Background()

// fixture builds a small Polyphony-style polystore and index.
func fixture(t *testing.T) (*core.Polystore, *aindex.Index) {
	t.Helper()
	poly := core.NewPolystore()

	rel := relstore.New("transactions")
	for _, sql := range []string{
		`CREATE TABLE inventory (id TEXT PRIMARY KEY, artist TEXT, name TEXT)`,
		`INSERT INTO inventory VALUES ('a32', 'Cure', 'Wish'), ('a33', 'Cure', 'Disintegration'), ('a34', 'Radiohead', 'OK Computer')`,
	} {
		if _, err := rel.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	doc := docstore.New("catalogue")
	for _, d := range []string{
		`{"_id": "d1", "title": "Wish", "artist": "The Cure"}`,
		`{"_id": "d2", "title": "Disintegration", "artist": "The Cure"}`,
	} {
		if _, err := doc.Insert("albums", d); err != nil {
			t.Fatal(err)
		}
	}
	kv := kvstore.New("discount")
	kv.Set("drop", "k1", "40%")
	graph := graphstore.New("similar-items")
	graph.AddNode("n1", "items", map[string]string{"title": "Wish"})
	graph.AddNode("n2", "items", map[string]string{"title": "Disintegration"})
	graph.AddEdge("n1", "n2", "SIMILAR", nil)

	for _, s := range []core.Store{
		connector.NewRelational(rel),
		connector.NewDocument(doc),
		connector.NewKeyValue(kv),
		connector.NewGraph(graph),
	} {
		if err := poly.Register(s); err != nil {
			t.Fatal(err)
		}
	}

	ix := aindex.New()
	gk := core.MustParseGlobalKey
	for _, r := range []core.PRelation{
		core.NewIdentity(gk("catalogue.albums.d1"), gk("transactions.inventory.a32"), 0.9),
		core.NewIdentity(gk("catalogue.albums.d1"), gk("discount.drop.k1"), 0.8),
		core.NewIdentity(gk("similar-items.items.n1"), gk("transactions.inventory.a32"), 0.85),
		core.NewMatching(gk("catalogue.albums.d2"), gk("transactions.inventory.a33"), 0.7),
		core.NewMatching(gk("similar-items.items.n2"), gk("transactions.inventory.a33"), 0.65),
	} {
		if err := ix.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return poly, ix
}

const wishQuery = `SELECT * FROM inventory WHERE name LIKE '%wish%'`

// signature renders an answer for set comparison.
func signature(a *augment.Answer) string {
	s := ""
	for _, ao := range a.Augmented {
		s += fmt.Sprintf("%s:%.4f;", ao.Object.GK, ao.Prob)
	}
	return s
}

func quepaReference(t *testing.T, poly *core.Polystore, ix *aindex.Index, level int) string {
	t.Helper()
	aug := augment.New(poly, ix, augment.Config{Strategy: augment.Sequential})
	answer, err := aug.Search(ctx, "transactions", wishQuery, level)
	if err != nil {
		t.Fatal(err)
	}
	return signature(answer)
}

func noSleep(time.Duration) {}

// allSupported makes a baseline integrate every engine kind (for answer
// equivalence checks against QUEPA).
var allSupported = []core.StoreKind{}

func TestMetamodelModesMatchQuepa(t *testing.T) {
	poly, ix := fixture(t)
	for _, level := range []int{0, 1} {
		want := quepaReference(t, poly, ix, level)
		for _, native := range []bool{false, true} {
			m := NewMetamodel(poly, ix, MetamodelConfig{Native: native, Sleep: noSleep, Unsupported: allSupported})
			answer, err := m.Augment(ctx, "transactions", wishQuery, level)
			if err != nil {
				t.Fatalf("%s level %d: %v", m.Name(), level, err)
			}
			if got := signature(answer); got != want {
				t.Errorf("%s level %d:\n got  %s\n want %s", m.Name(), level, got, want)
			}
		}
	}
}

func TestTalendMatchesQuepa(t *testing.T) {
	poly, ix := fixture(t)
	for _, level := range []int{0, 1} {
		want := quepaReference(t, poly, ix, level)
		tal := NewTalend(poly, ix, TalendConfig{Sleep: noSleep, Unsupported: allSupported})
		answer, err := tal.Augment(ctx, "transactions", wishQuery, level)
		if err != nil {
			t.Fatal(err)
		}
		if got := signature(answer); got != want {
			t.Errorf("TALEND level %d:\n got  %s\n want %s", level, got, want)
		}
	}
}

func TestArangoModesMatchQuepa(t *testing.T) {
	poly, ix := fixture(t)
	for _, level := range []int{0, 1} {
		want := quepaReference(t, poly, ix, level)
		for _, native := range []bool{false, true} {
			a := NewArango(poly, ix, ArangoConfig{Native: native, Sleep: noSleep, Unsupported: allSupported})
			answer, err := a.Augment(ctx, "transactions", wishQuery, level)
			if err != nil {
				t.Fatalf("%s level %d: %v", a.Name(), level, err)
			}
			if got := signature(answer); got != want {
				t.Errorf("%s level %d:\n got  %s\n want %s", a.Name(), level, got, want)
			}
		}
	}
}

func TestMetamodelDefaultExcludesKeyValue(t *testing.T) {
	poly, ix := fixture(t)
	m := NewMetamodel(poly, ix, MetamodelConfig{Sleep: noSleep})
	answer, err := m.Augment(ctx, "transactions", wishQuery, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ao := range answer.Augmented {
		if ao.Object.GK.Database == "discount" {
			t.Errorf("unsupported kv object surfaced: %v", ao.Object.GK)
		}
	}
	// Querying an unsupported store fails outright.
	if _, err := m.Augment(ctx, "discount", "SCAN drop", 0); err == nil {
		t.Error("query on unsupported engine should fail")
	}
}

func TestArangoRejectsRelationalByDefault(t *testing.T) {
	poly, ix := fixture(t)
	a := NewArango(poly, ix, ArangoConfig{Sleep: noSleep})
	if _, err := a.Augment(ctx, "transactions", wishQuery, 0); err == nil {
		t.Error("relational query on default Arango should fail")
	}
	// Graph queries work, and relational objects are absent from answers.
	answer, err := a.Augment(ctx, "similar-items", `MATCH (n:items) RETURN n`, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, ao := range answer.Augmented {
		if ao.Object.GK.Database == "transactions" {
			t.Errorf("unimported relational object surfaced: %v", ao.Object.GK)
		}
	}
}

func TestMetamodelNativeOOM(t *testing.T) {
	poly, ix := fixture(t)
	// Budget below the fixture's full-scan footprint: NAT dies, AUG lives.
	budget := int64(1200)
	nat := NewMetamodel(poly, ix, MetamodelConfig{Native: true, Mem: memlimit.New(budget), Sleep: noSleep, Unsupported: allSupported})
	if _, err := nat.Augment(ctx, "transactions", wishQuery, 0); !errors.Is(err, memlimit.ErrOutOfMemory) {
		t.Errorf("META-NAT with tiny budget: err = %v, want OOM", err)
	}
	aug := NewMetamodel(poly, ix, MetamodelConfig{Native: false, Mem: memlimit.New(budget), Sleep: noSleep, Unsupported: allSupported})
	if _, err := aug.Augment(ctx, "transactions", wishQuery, 0); err != nil {
		t.Errorf("META-AUG with same budget failed: %v", err)
	}
}

func TestTalendOOM(t *testing.T) {
	poly, ix := fixture(t)
	tal := NewTalend(poly, ix, TalendConfig{Mem: memlimit.New(500), Sleep: noSleep, Unsupported: allSupported})
	if _, err := tal.Augment(ctx, "transactions", wishQuery, 0); !errors.Is(err, memlimit.ErrOutOfMemory) {
		t.Errorf("TALEND with tiny budget: err = %v, want OOM", err)
	}
}

func TestArangoOOMOnImport(t *testing.T) {
	poly, ix := fixture(t)
	a := NewArango(poly, ix, ArangoConfig{Mem: memlimit.New(300), Sleep: noSleep, Unsupported: allSupported})
	if _, err := a.Augment(ctx, "transactions", wishQuery, 0); !errors.Is(err, memlimit.ErrOutOfMemory) {
		t.Errorf("ARANGO import with tiny budget: err = %v, want OOM", err)
	}
	// The failed import must not leak charged memory.
	if used := a.mem.Used(); used != 0 {
		t.Errorf("leaked %d bytes after failed import", used)
	}
}

func TestArangoImportsOnceAndColdStartReimports(t *testing.T) {
	poly, ix := fixture(t)
	var slept atomic.Int64
	sleeper := func(d time.Duration) { slept.Add(int64(d)) }
	a := NewArango(poly, ix, ArangoConfig{Sleep: sleeper, Unsupported: allSupported, PerImport: time.Millisecond})
	if _, err := a.Augment(ctx, "transactions", wishQuery, 0); err != nil {
		t.Fatal(err)
	}
	afterFirst := slept.Load()
	if afterFirst == 0 {
		t.Fatal("no warm-up cost charged")
	}
	if _, err := a.Augment(ctx, "transactions", wishQuery, 0); err != nil {
		t.Fatal(err)
	}
	warmDelta := slept.Load() - afterFirst
	if warmDelta >= afterFirst/2 {
		t.Errorf("second (warm) query cost %v vs first %v: import not amortized",
			time.Duration(warmDelta), time.Duration(afterFirst))
	}
	a.ColdStart()
	before := slept.Load()
	if _, err := a.Augment(ctx, "transactions", wishQuery, 0); err != nil {
		t.Fatal(err)
	}
	if slept.Load()-before < afterFirst/2 {
		t.Error("cold start did not pay the import again")
	}
}

func TestTalendStartupPaidPerColdStart(t *testing.T) {
	poly, ix := fixture(t)
	var slept atomic.Int64
	sleeper := func(d time.Duration) { slept.Add(int64(d)) }
	tal := NewTalend(poly, ix, TalendConfig{Sleep: sleeper, Startup: 50 * time.Millisecond, Unsupported: allSupported})
	tal.Augment(ctx, "transactions", wishQuery, 0)
	first := slept.Load()
	tal.Augment(ctx, "transactions", wishQuery, 0)
	second := slept.Load() - first
	if second >= first {
		t.Errorf("startup charged twice without cold start: %v then %v", time.Duration(first), time.Duration(second))
	}
	tal.ColdStart()
	before := slept.Load()
	tal.Augment(ctx, "transactions", wishQuery, 0)
	if slept.Load()-before < int64(50*time.Millisecond) {
		t.Error("startup not re-paid after cold start")
	}
}

func TestScanQuery(t *testing.T) {
	tests := []struct {
		kind core.StoreKind
		coll string
		want string
	}{
		{core.KindRelational, "inventory", "SELECT * FROM inventory"},
		{core.KindDocument, "albums", "albums.find({})"},
		{core.KindKeyValue, "drop", "SCAN drop"},
		{core.KindGraph, "items", "MATCH (n:items) RETURN n"},
	}
	for _, tt := range tests {
		got, err := ScanQuery(tt.kind, tt.coll)
		if err != nil || got != tt.want {
			t.Errorf("ScanQuery(%v, %s) = %q, %v", tt.kind, tt.coll, got, err)
		}
	}
	if _, err := ScanQuery(core.StoreKind(99), "x"); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestScanAll(t *testing.T) {
	poly, _ := fixture(t)
	s, err := poly.Database("transactions")
	if err != nil {
		t.Fatal(err)
	}
	objs, err := ScanAll(ctx, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Errorf("ScanAll(transactions) = %d objects", len(objs))
	}
}

func TestValidatorsAppliedByBaselines(t *testing.T) {
	poly, ix := fixture(t)
	systems := []System{
		NewMetamodel(poly, ix, MetamodelConfig{Sleep: noSleep, Unsupported: allSupported}),
		NewMetamodel(poly, ix, MetamodelConfig{Native: true, Sleep: noSleep, Unsupported: allSupported}),
		NewTalend(poly, ix, TalendConfig{Sleep: noSleep, Unsupported: allSupported}),
		NewArango(poly, ix, ArangoConfig{Sleep: noSleep, Unsupported: allSupported}),
	}
	for _, s := range systems {
		if _, err := s.Augment(ctx, "transactions", `SELECT COUNT(*) FROM inventory`, 0); err == nil {
			t.Errorf("%s accepted an aggregate query", s.Name())
		}
		if _, err := s.Augment(ctx, "ghostdb", `SELECT * FROM x`, 0); err == nil {
			t.Errorf("%s accepted an unknown database", s.Name())
		}
	}
}

func TestArangoConcurrentQueries(t *testing.T) {
	// Concurrent first queries must import exactly once and all succeed.
	poly, ix := fixture(t)
	var imports atomic.Int64
	sleeper := func(d time.Duration) {
		if d >= 10*time.Millisecond { // the import warm-up is the only big sleep
			imports.Add(1)
		}
	}
	a := NewArango(poly, ix, ArangoConfig{Sleep: sleeper, Unsupported: allSupported, PerImport: 10 * time.Millisecond})
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Augment(ctx, "transactions", wishQuery, 0); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if imports.Load() != 1 {
		t.Errorf("import ran %d times under concurrency", imports.Load())
	}
}
