package middleware

import (
	"context"
	"fmt"
	"sync"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/middleware/memlimit"
	"quepa/internal/validator"
)

// Arango emulates the ArangoDB baseline of Section VII: a multi-model
// in-memory database into which the whole polystore and the A' index are
// imported. Two modes mirror the paper's two implementations:
//
//   - ModeNative ("ARANGO-NAT") answers the augmentation with a single
//     traversal query over the imported graph;
//   - ModeAugment ("ARANGO-AUG") runs QUEPA's augmentation algorithm using
//     the imported store only for object access.
//
// Because everything lives in memory, the system "needs to warm up at
// start-up" (the import, charged on the first query after ColdStart) and its
// footprint grows with the polystore, producing the out-of-memory failures
// of Fig. 13 as databases are added. Relational engines are not importable
// (the paper: "relational databases are not supported").
type Arango struct {
	poly        *core.Polystore
	index       *aindex.Index
	native      bool
	mem         *memlimit.Accountant
	sleep       func(time.Duration)
	perImport   time.Duration
	perTraverse time.Duration
	unsupported map[core.StoreKind]bool

	mu        sync.Mutex
	imported  bool
	rows      map[core.GlobalKey]core.Object
	adj       map[core.GlobalKey][]aindex.Hit
	importMem int64
}

// ArangoConfig parameterizes the emulation.
type ArangoConfig struct {
	// Native selects ARANGO-NAT; false selects ARANGO-AUG.
	Native bool
	// Mem is the in-memory database's budget (nil = unlimited).
	Mem *memlimit.Accountant
	// PerImport is the warm-up cost per imported object/edge (default 1µs).
	PerImport time.Duration
	// PerTraverse is the cost per traversal step (default 100ns).
	PerTraverse time.Duration
	// Sleep injects the cost model's sleeper (nil = time.Sleep).
	Sleep func(time.Duration)
	// Unsupported engine kinds (defaults to relational, as in the paper).
	Unsupported []core.StoreKind
}

// NewArango creates the emulation over a polystore and its A' index.
func NewArango(poly *core.Polystore, index *aindex.Index, cfg ArangoConfig) *Arango {
	a := &Arango{
		poly:        poly,
		index:       index,
		native:      cfg.Native,
		mem:         cfg.Mem,
		sleep:       cfg.Sleep,
		perImport:   cfg.PerImport,
		perTraverse: cfg.PerTraverse,
	}
	if a.mem == nil {
		a.mem = memlimit.New(0)
	}
	if a.sleep == nil {
		a.sleep = time.Sleep
	}
	if a.perImport <= 0 {
		a.perImport = time.Microsecond
	}
	if a.perTraverse <= 0 {
		a.perTraverse = 100 * time.Nanosecond
	}
	kinds := cfg.Unsupported
	if kinds == nil {
		kinds = []core.StoreKind{core.KindRelational}
	}
	a.unsupported = map[core.StoreKind]bool{}
	for _, k := range kinds {
		a.unsupported[k] = true
	}
	return a
}

// Name implements System.
func (a *Arango) Name() string {
	if a.native {
		return "ARANGO-NAT"
	}
	return "ARANGO-AUG"
}

// ColdStart implements System: the in-memory image is dropped; the next
// query pays the import warm-up again.
func (a *Arango) ColdStart() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.imported = false
	a.rows = nil
	a.adj = nil
	a.mem.Free(a.importMem)
	a.importMem = 0
}

// ensureImported performs the warm-up import of data and index.
func (a *Arango) ensureImported(ctx context.Context) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.imported {
		return nil
	}
	rows := map[core.GlobalKey]core.Object{}
	var cost int64
	imported := 0
	for _, name := range a.poly.Databases() {
		s, err := a.poly.Database(name)
		if err != nil {
			return err
		}
		if a.unsupported[s.Kind()] {
			continue
		}
		objs, err := ScanAll(ctx, s)
		if err != nil {
			return err
		}
		for _, o := range objs {
			c := memlimit.ObjectCost(o)
			if err := a.mem.Alloc(c); err != nil {
				a.mem.Free(cost)
				return fmt.Errorf("arango: importing %s: %w", name, err)
			}
			cost += c
			rows[o.GK] = o
			imported++
		}
	}
	edges := a.index.Edges()
	adj := map[core.GlobalKey][]aindex.Hit{}
	for _, e := range edges {
		c := memlimit.EdgeCost(e)
		if err := a.mem.Alloc(c); err != nil {
			a.mem.Free(cost)
			return fmt.Errorf("arango: importing index: %w", err)
		}
		cost += c
		adj[e.From] = append(adj[e.From], aindex.Hit{Key: e.To, Prob: e.Prob})
		adj[e.To] = append(adj[e.To], aindex.Hit{Key: e.From, Prob: e.Prob})
		imported++
	}
	a.sleep(time.Duration(imported) * a.perImport)
	a.rows = rows
	a.adj = adj
	a.importMem = cost
	a.imported = true
	return nil
}

// Augment implements System.
func (a *Arango) Augment(ctx context.Context, database, query string, level int) (*augment.Answer, error) {
	store, err := a.poly.Database(database)
	if err != nil {
		return nil, err
	}
	if a.unsupported[store.Kind()] {
		return nil, fmt.Errorf("arango: engine kind %v is not supported", store.Kind())
	}
	if err := a.ensureImported(ctx); err != nil {
		return nil, err
	}
	v, err := validator.Validate(ctx, store, query)
	if err != nil {
		return nil, err
	}
	// The local query still runs on the imported image in ArangoDB, but the
	// result is identical to the native store's: execute it natively for
	// fidelity of the answer, charge traversal cost for the AQL execution.
	original, err := store.Query(ctx, v.Query)
	if err != nil {
		return nil, err
	}
	a.sleep(time.Duration(len(original)) * a.perTraverse)

	originSet := map[core.GlobalKey]bool{}
	for _, o := range original {
		originSet[o.GK] = true
	}

	a.mu.Lock()
	adj, rows := a.adj, a.rows
	a.mu.Unlock()

	best := map[core.GlobalKey]aindex.Hit{}
	steps := 0
	if a.native {
		// ARANGO-NAT: one AQL traversal of depth level+1 from all origins.
		frontier := map[core.GlobalKey]float64{}
		for _, o := range original {
			frontier[o.GK] = 1
		}
		for hop := 1; hop <= level+1; hop++ {
			next := map[core.GlobalKey]float64{}
			for cur, p := range frontier {
				for _, h := range adj[cur] {
					steps++
					prob := p * h.Prob
					if originSet[h.Key] {
						continue
					}
					old, seen := best[h.Key]
					if !seen || prob > old.Prob {
						best[h.Key] = aindex.Hit{Key: h.Key, Prob: prob, Dist: hop}
						if prob > next[h.Key] {
							next[h.Key] = prob
						}
					}
				}
			}
			frontier = next
		}
	} else {
		// ARANGO-AUG: QUEPA's algorithm, consulting the real A' index and
		// touching the imported image once per reached key.
		for _, o := range original {
			for _, h := range a.index.Reach(o.GK, level) {
				steps++
				if originSet[h.Key] {
					continue
				}
				if old, ok := best[h.Key]; !ok || h.Prob > old.Prob {
					best[h.Key] = h
				}
			}
		}
	}
	a.sleep(time.Duration(steps) * a.perTraverse)

	var out []augment.AugmentedObject
	for gk, h := range best {
		if obj, ok := rows[gk]; ok {
			out = append(out, augment.AugmentedObject{Object: obj, Prob: h.Prob, Dist: h.Dist})
		}
	}
	sortAugmented(out)
	return &augment.Answer{Original: original, Augmented: out}, nil
}
