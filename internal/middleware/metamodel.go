package middleware

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/middleware/memlimit"
	"quepa/internal/validator"
)

// Metamodel emulates Apache Metamodel, the representative of loosely-coupled
// integration interfaces (Section VII-A): a middleware layer that converts
// every object it touches into a unified row model. Two modes mirror the
// paper's two implementations:
//
//   - ModeNative ("META-NAT") implements augmentation with the middleware's
//     native join operators: the A' index is materialized as a relation, the
//     touched collections are scanned wholesale into unified rows, and the
//     expansion is computed as level+1 hash joins. Everything is
//     materialized, so memory grows with the data and the paper's
//     out-of-memory crossovers appear.
//
//   - ModeAugment ("META-AUG") simulates QUEPA's algorithm on top of the
//     middleware: objects are fetched one by one through the unified row
//     layer (Metamodel cannot batch heterogeneous backends), paying the
//     conversion cost per row but only for the objects actually needed.
//
// Like the real tool, the emulation can be configured with unsupported
// engine kinds (the paper could not integrate Redis): objects living in
// unsupported stores are invisible to it.
type Metamodel struct {
	poly        *core.Polystore
	index       *aindex.Index
	native      bool
	mem         *memlimit.Accountant
	sleep       func(time.Duration)
	perRow      time.Duration
	unsupported map[core.StoreKind]bool
}

// MetamodelConfig parameterizes the emulation.
type MetamodelConfig struct {
	// Native selects META-NAT; false selects META-AUG.
	Native bool
	// Mem is the middleware's memory budget (nil = unlimited).
	Mem *memlimit.Accountant
	// PerRow is the unified-row conversion cost charged per materialized
	// row (default 200ns).
	PerRow time.Duration
	// Sleep injects the cost model's sleeper (nil = time.Sleep).
	Sleep func(time.Duration)
	// Unsupported lists engine kinds the middleware cannot integrate
	// (defaults to key-value stores, as in the paper's setup).
	Unsupported []core.StoreKind
}

// NewMetamodel creates the emulation over a polystore and its A' index.
func NewMetamodel(poly *core.Polystore, index *aindex.Index, cfg MetamodelConfig) *Metamodel {
	m := &Metamodel{
		poly:   poly,
		index:  index,
		native: cfg.Native,
		mem:    cfg.Mem,
		sleep:  cfg.Sleep,
		perRow: cfg.PerRow,
	}
	if m.mem == nil {
		m.mem = memlimit.New(0)
	}
	if m.sleep == nil {
		m.sleep = time.Sleep
	}
	if m.perRow <= 0 {
		m.perRow = 200 * time.Nanosecond
	}
	kinds := cfg.Unsupported
	if kinds == nil {
		kinds = []core.StoreKind{core.KindKeyValue}
	}
	m.unsupported = map[core.StoreKind]bool{}
	for _, k := range kinds {
		m.unsupported[k] = true
	}
	return m
}

// Name implements System.
func (m *Metamodel) Name() string {
	if m.native {
		return "META-NAT"
	}
	return "META-AUG"
}

// ColdStart implements System: the middleware keeps no cross-query state
// beyond its memory accounting, which a restart clears.
func (m *Metamodel) ColdStart() { m.mem.Reset() }

// Augment implements System.
func (m *Metamodel) Augment(ctx context.Context, database, query string, level int) (*augment.Answer, error) {
	store, err := m.poly.Database(database)
	if err != nil {
		return nil, err
	}
	if m.unsupported[store.Kind()] {
		return nil, fmt.Errorf("metamodel: engine kind %v is not supported", store.Kind())
	}
	v, err := validator.Validate(ctx, store, query)
	if err != nil {
		return nil, err
	}
	original, err := store.Query(ctx, v.Query)
	if err != nil {
		return nil, err
	}
	// The local result passes through the unified row layer.
	cost, err := m.materialize(original)
	if err != nil {
		return nil, err
	}
	defer m.mem.Free(cost)

	if m.native {
		return m.augmentNative(ctx, original, level)
	}
	return m.augmentSimulated(ctx, original, level)
}

// augmentSimulated is META-AUG: QUEPA's algorithm through the row layer,
// one direct-access query per key (no cross-backend batching).
func (m *Metamodel) augmentSimulated(ctx context.Context, original []core.Object, level int) (*augment.Answer, error) {
	originSet := map[core.GlobalKey]bool{}
	for _, o := range original {
		originSet[o.GK] = true
	}
	best := map[core.GlobalKey]aindex.Hit{}
	for _, o := range original {
		for _, h := range m.index.Reach(o.GK, level) {
			if originSet[h.Key] || m.unsupportedKey(h.Key) {
				continue
			}
			if old, ok := best[h.Key]; !ok || h.Prob > old.Prob {
				best[h.Key] = h
			}
		}
	}
	var out []augment.AugmentedObject
	var materialized int64
	defer func() { m.mem.Free(materialized) }()
	for gk, h := range best {
		obj, err := m.poly.Fetch(ctx, gk)
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				continue
			}
			return nil, err
		}
		cost, err := m.materialize([]core.Object{obj})
		if err != nil {
			return nil, err
		}
		materialized += cost
		out = append(out, augment.AugmentedObject{Object: obj, Prob: h.Prob, Dist: h.Dist})
	}
	sortAugmented(out)
	return &augment.Answer{Original: original, Augmented: out}, nil
}

// augmentNative is META-NAT: the index becomes a join relation, the touched
// collections are scanned wholesale, and the expansion is computed by
// level+1 hash joins over fully materialized intermediates.
func (m *Metamodel) augmentNative(ctx context.Context, original []core.Object, level int) (*augment.Answer, error) {
	// 1. Materialize the whole A' index as a relation.
	edges := m.index.Edges()
	var edgeCost int64
	for _, e := range edges {
		edgeCost += memlimit.EdgeCost(e)
	}
	if err := m.mem.Alloc(edgeCost); err != nil {
		return nil, err
	}
	defer m.mem.Free(edgeCost)
	m.sleep(time.Duration(len(edges)) * m.perRow / 4)

	adj := map[core.GlobalKey][]aindex.Hit{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], aindex.Hit{Key: e.To, Prob: e.Prob})
		adj[e.To] = append(adj[e.To], aindex.Hit{Key: e.From, Prob: e.Prob})
	}

	// 2. level+1 hash joins, materializing every intermediate frontier.
	originSet := map[core.GlobalKey]bool{}
	for _, o := range original {
		originSet[o.GK] = true
	}
	best := map[core.GlobalKey]aindex.Hit{}
	frontier := map[core.GlobalKey]float64{}
	for _, o := range original {
		frontier[o.GK] = 1
	}
	var joinCost int64
	defer func() { m.mem.Free(joinCost) }()
	for hop := 1; hop <= level+1; hop++ {
		next := map[core.GlobalKey]float64{}
		for cur, p := range frontier {
			for _, h := range adj[cur] {
				prob := p * h.Prob
				// Every join output row is materialized.
				joinCost += 64
				if err := m.mem.Alloc(64); err != nil {
					return nil, err
				}
				if originSet[h.Key] || m.unsupportedKey(h.Key) {
					continue
				}
				old, seen := best[h.Key]
				if !seen || prob > old.Prob {
					best[h.Key] = aindex.Hit{Key: h.Key, Prob: prob, Dist: hop}
					if prob > next[h.Key] {
						next[h.Key] = prob
					}
				}
			}
		}
		frontier = next
	}

	// 3. Scan every touched collection wholesale into unified rows.
	type coll struct{ db, name string }
	touched := map[coll]bool{}
	for gk := range best {
		touched[coll{gk.Database, gk.Collection}] = true
	}
	ordered := make([]coll, 0, len(touched))
	for c := range touched {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].db != ordered[j].db {
			return ordered[i].db < ordered[j].db
		}
		return ordered[i].name < ordered[j].name
	})
	rows := map[core.GlobalKey]core.Object{}
	var scanCost int64
	defer func() { m.mem.Free(scanCost) }()
	for _, c := range ordered {
		store, err := m.poly.Database(c.db)
		if err != nil {
			return nil, err
		}
		q, err := ScanQuery(store.Kind(), c.name)
		if err != nil {
			return nil, err
		}
		objs, err := store.Query(ctx, q)
		if err != nil {
			return nil, err
		}
		cost, err := m.materialize(objs)
		scanCost += cost
		if err != nil {
			return nil, err
		}
		for _, o := range objs {
			rows[o.GK] = o
		}
	}

	// 4. Final join: expansion keys against the scanned rows.
	var out []augment.AugmentedObject
	for gk, h := range best {
		if obj, ok := rows[gk]; ok {
			out = append(out, augment.AugmentedObject{Object: obj, Prob: h.Prob, Dist: h.Dist})
		}
	}
	sortAugmented(out)
	return &augment.Answer{Original: original, Augmented: out}, nil
}

// materialize charges memory and conversion time for rows entering the
// unified row model. It returns the bytes charged (also on failure, where
// the return is what was charged before the failure: zero).
func (m *Metamodel) materialize(objs []core.Object) (int64, error) {
	var cost int64
	for _, o := range objs {
		cost += memlimit.ObjectCost(o)
	}
	if err := m.mem.Alloc(cost); err != nil {
		return 0, err
	}
	m.sleep(time.Duration(len(objs)) * m.perRow)
	return cost, nil
}

func (m *Metamodel) unsupportedKey(gk core.GlobalKey) bool {
	store, err := m.poly.Database(gk.Database)
	if err != nil {
		return true
	}
	return m.unsupported[store.Kind()]
}

func sortAugmented(out []augment.AugmentedObject) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Object.GK.Compare(out[j].Object.GK) < 0
	})
}
