package middleware

import (
	"context"
	"fmt"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/middleware/memlimit"
	"quepa/internal/validator"
)

// Talend emulates the compiled Talend Open Studio workflow of Section VII:
// a classical ETL pipeline that implements augmentation as a sequence of
// statically wired stages —
//
//	extract:   scan every supported database wholesale,
//	reference: load the A' index as a lookup table,
//	join:      expand the local result level+1 times against the lookup,
//	emit:      project the joined rows into the answer.
//
// Every stage materializes its full output before the next stage starts
// (that is what generated ETL code does), which gives Talend the steepest
// memory and time slopes in the paper's Fig. 13. A fixed startup cost models
// the compiled job's JVM spin-up, paid again after every ColdStart.
type Talend struct {
	poly        *core.Polystore
	index       *aindex.Index
	mem         *memlimit.Accountant
	sleep       func(time.Duration)
	perRow      time.Duration
	startup     time.Duration
	started     bool
	unsupported map[core.StoreKind]bool
}

// TalendConfig parameterizes the emulation.
type TalendConfig struct {
	// Mem is the workflow's memory budget (nil = unlimited).
	Mem *memlimit.Accountant
	// PerRow is the per-row stage processing cost (default 500ns).
	PerRow time.Duration
	// Startup is the compiled job's start cost (default 2ms), paid on the
	// first query after a cold start.
	Startup time.Duration
	// Sleep injects the cost model's sleeper (nil = time.Sleep).
	Sleep func(time.Duration)
	// Unsupported engine kinds (defaults to key-value stores, as in the
	// paper's workflow, which had no Redis connector).
	Unsupported []core.StoreKind
}

// NewTalend creates the emulation over a polystore and its A' index.
func NewTalend(poly *core.Polystore, index *aindex.Index, cfg TalendConfig) *Talend {
	t := &Talend{
		poly:    poly,
		index:   index,
		mem:     cfg.Mem,
		sleep:   cfg.Sleep,
		perRow:  cfg.PerRow,
		startup: cfg.Startup,
	}
	if t.mem == nil {
		t.mem = memlimit.New(0)
	}
	if t.sleep == nil {
		t.sleep = time.Sleep
	}
	if t.perRow <= 0 {
		t.perRow = 500 * time.Nanosecond
	}
	if t.startup <= 0 {
		t.startup = 2 * time.Millisecond
	}
	kinds := cfg.Unsupported
	if kinds == nil {
		kinds = []core.StoreKind{core.KindKeyValue}
	}
	t.unsupported = map[core.StoreKind]bool{}
	for _, k := range kinds {
		t.unsupported[k] = true
	}
	return t
}

// Name implements System.
func (t *Talend) Name() string { return "TALEND" }

// ColdStart implements System.
func (t *Talend) ColdStart() {
	t.started = false
	t.mem.Reset()
}

// Augment implements System.
func (t *Talend) Augment(ctx context.Context, database, query string, level int) (*augment.Answer, error) {
	if !t.started {
		t.sleep(t.startup)
		t.started = true
	}
	store, err := t.poly.Database(database)
	if err != nil {
		return nil, err
	}
	if t.unsupported[store.Kind()] {
		return nil, fmt.Errorf("talend: engine kind %v is not supported", store.Kind())
	}
	v, err := validator.Validate(ctx, store, query)
	if err != nil {
		return nil, err
	}
	original, err := store.Query(ctx, v.Query)
	if err != nil {
		return nil, err
	}

	// Stage 1 — extract: scan every supported database wholesale. The
	// workflow is statically wired, so it always pulls everything.
	rows := map[core.GlobalKey]core.Object{}
	var extractCost int64
	defer func() { t.mem.Free(extractCost) }()
	for _, name := range t.poly.Databases() {
		s, err := t.poly.Database(name)
		if err != nil {
			return nil, err
		}
		if t.unsupported[s.Kind()] {
			continue
		}
		objs, err := ScanAll(ctx, s)
		if err != nil {
			return nil, err
		}
		for _, o := range objs {
			c := memlimit.ObjectCost(o)
			if err := t.mem.Alloc(c); err != nil {
				return nil, err
			}
			extractCost += c
			rows[o.GK] = o
		}
		t.sleep(time.Duration(len(objs)) * t.perRow)
	}

	// Stage 2 — reference: materialize the index as a lookup table.
	edges := t.index.Edges()
	var edgeCost int64
	for _, e := range edges {
		edgeCost += memlimit.EdgeCost(e)
	}
	if err := t.mem.Alloc(edgeCost); err != nil {
		return nil, err
	}
	defer t.mem.Free(edgeCost)
	t.sleep(time.Duration(len(edges)) * t.perRow)
	adj := map[core.GlobalKey][]aindex.Hit{}
	for _, e := range edges {
		adj[e.From] = append(adj[e.From], aindex.Hit{Key: e.To, Prob: e.Prob})
		adj[e.To] = append(adj[e.To], aindex.Hit{Key: e.From, Prob: e.Prob})
	}

	// Stage 3 — join: expand level+1 times, materializing each round.
	originSet := map[core.GlobalKey]bool{}
	for _, o := range original {
		originSet[o.GK] = true
	}
	best := map[core.GlobalKey]aindex.Hit{}
	frontier := map[core.GlobalKey]float64{}
	for _, o := range original {
		frontier[o.GK] = 1
	}
	var joinCost int64
	defer func() { t.mem.Free(joinCost) }()
	joined := 0
	for hop := 1; hop <= level+1; hop++ {
		next := map[core.GlobalKey]float64{}
		for cur, p := range frontier {
			for _, h := range adj[cur] {
				joined++
				joinCost += 64
				if err := t.mem.Alloc(64); err != nil {
					return nil, err
				}
				prob := p * h.Prob
				if originSet[h.Key] {
					continue
				}
				old, seen := best[h.Key]
				if !seen || prob > old.Prob {
					best[h.Key] = aindex.Hit{Key: h.Key, Prob: prob, Dist: hop}
					if prob > next[h.Key] {
						next[h.Key] = prob
					}
				}
			}
		}
		frontier = next
	}
	t.sleep(time.Duration(joined) * t.perRow)

	// Stage 4 — emit.
	var out []augment.AugmentedObject
	for gk, h := range best {
		if obj, ok := rows[gk]; ok {
			out = append(out, augment.AugmentedObject{Object: obj, Prob: h.Prob, Dist: h.Dist})
		}
	}
	t.sleep(time.Duration(len(out)) * t.perRow)
	sortAugmented(out)
	return &augment.Answer{Original: original, Augmented: out}, nil
}
