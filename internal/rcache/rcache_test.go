package rcache

import (
	"fmt"
	"sync"
	"testing"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

func gk(key string) core.GlobalKey {
	return core.GlobalKey{Database: "db", Collection: "col", Key: key}
}

func reachKey(key string, level int) Key {
	return Key{GK: gk(key), Level: level, Kind: KindReach}
}

func TestReachRoundTrip(t *testing.T) {
	c := New(8)
	hits := []aindex.Hit{{Key: gk("b"), Prob: 0.9, Dist: 1}}
	stats := aindex.ReachStats{Nodes: 3, Edges: 7, Snapshot: true}
	c.PutReach(reachKey("a", 2), 5, hits, stats)

	got, gotStats, ok := c.GetReach(reachKey("a", 2), 5)
	if !ok {
		t.Fatal("expected a hit at the stored epoch")
	}
	if len(got) != 1 || got[0] != hits[0] || gotStats != stats {
		t.Fatalf("got %v %v, want %v %v", got, gotStats, hits, stats)
	}
	// A different level is a different result.
	if _, _, ok := c.GetReach(reachKey("a", 3), 5); ok {
		t.Fatal("level must be part of the key")
	}
}

func TestEpochMismatchEvicts(t *testing.T) {
	c := New(8)
	c.PutReach(reachKey("a", 1), 5, nil, aindex.ReachStats{})

	if _, _, ok := c.GetReach(reachKey("a", 1), 6); ok {
		t.Fatal("entry from epoch 5 must not validate at epoch 6")
	}
	st := c.Stats()
	if st.EpochMismatches != 1 {
		t.Fatalf("EpochMismatches = %d, want 1", st.EpochMismatches)
	}
	if st.Len != 0 {
		t.Fatalf("stale entry not evicted: Len = %d", st.Len)
	}
	// The mismatch evicted the entry, so re-probing at the original epoch is
	// a plain miss, not a second mismatch.
	if _, _, ok := c.GetReach(reachKey("a", 1), 5); ok {
		t.Fatal("evicted entry resurrected")
	}
	if st := c.Stats(); st.EpochMismatches != 1 {
		t.Fatalf("EpochMismatches after plain miss = %d, want 1", st.EpochMismatches)
	}
}

func TestOutcomeRoundTrip(t *testing.T) {
	c := New(8)
	k := Key{GK: gk("a"), Level: 1, MinProb: 0.5, Kind: KindOutcome}
	c.PutOutcome(k, 9, "payload")
	v, ok := c.GetOutcome(k, 9)
	if !ok || v != "payload" {
		t.Fatalf("GetOutcome = %v, %v", v, ok)
	}
	// MinProb participates in the key for outcomes.
	k2 := k
	k2.MinProb = 0.6
	if _, ok := c.GetOutcome(k2, 9); ok {
		t.Fatal("MinProb must be part of the key")
	}
}

func TestInvalidateFlushes(t *testing.T) {
	c := New(8)
	for i := 0; i < 4; i++ {
		c.PutReach(reachKey(fmt.Sprint(i), 0), 1, nil, aindex.ReachStats{})
	}
	c.Invalidate()
	if n := c.Len(); n != 0 {
		t.Fatalf("Len after Invalidate = %d", n)
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
	if _, _, ok := c.GetReach(reachKey("0", 0), 1); ok {
		t.Fatal("flushed entry served")
	}
}

func TestZeroCapacityDisabled(t *testing.T) {
	c := New(0)
	c.PutReach(reachKey("a", 0), 1, nil, aindex.ReachStats{})
	if _, _, ok := c.GetReach(reachKey("a", 0), 1); ok {
		t.Fatal("zero-capacity cache stored an entry")
	}
}

func TestEvictionAtCapacity(t *testing.T) {
	c := New(2) // below shardThreshold: one shard, exact LRU
	c.PutReach(reachKey("a", 0), 1, nil, aindex.ReachStats{})
	c.PutReach(reachKey("b", 0), 1, nil, aindex.ReachStats{})
	c.GetReach(reachKey("a", 0), 1) // refresh a
	c.PutReach(reachKey("c", 0), 1, nil, aindex.ReachStats{})
	if _, _, ok := c.GetReach(reachKey("b", 0), 1); ok {
		t.Fatal("LRU entry b should have been evicted")
	}
	if _, _, ok := c.GetReach(reachKey("a", 0), 1); !ok {
		t.Fatal("recently used entry a evicted")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", st.Evictions)
	}
}

func TestResizeShrinks(t *testing.T) {
	c := New(4)
	for i := 0; i < 4; i++ {
		c.PutReach(reachKey(fmt.Sprint(i), 0), 1, nil, aindex.ReachStats{})
	}
	c.Resize(1)
	if n := c.Len(); n != 1 {
		t.Fatalf("Len after Resize(1) = %d", n)
	}
	if c.Capacity() != 1 {
		t.Fatalf("Capacity = %d", c.Capacity())
	}
}

func TestNilCacheSafe(t *testing.T) {
	var c *Cache
	c.PutReach(reachKey("a", 0), 1, nil, aindex.ReachStats{})
	if _, _, ok := c.GetReach(reachKey("a", 0), 1); ok {
		t.Fatal("nil cache hit")
	}
	c.Invalidate()
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil Stats = %+v", st)
	}
	if c.Len() != 0 || c.Capacity() != 0 {
		t.Fatal("nil Len/Capacity nonzero")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(1024) // sharded
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := reachKey(fmt.Sprint(i%32), w%3)
				epoch := uint64(i % 4)
				c.PutReach(k, epoch, []aindex.Hit{{Key: gk("x"), Prob: 0.5, Dist: 1}}, aindex.ReachStats{})
				c.GetReach(k, epoch)
				if i%50 == 0 {
					c.Invalidate()
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestInvalidationHookFlushesOnReplaceComponent: wiring the cache's
// Invalidate as the index's invalidation hook makes component surgery flush
// every entry immediately — epoch aging alone only catches stale entries on
// probe, while a region swap must make them unservable at once.
func TestInvalidationHookFlushesOnReplaceComponent(t *testing.T) {
	ix := aindex.New()
	if err := ix.Insert(core.NewIdentity(gk("a"), gk("b"), 0.9)); err != nil {
		t.Fatal(err)
	}
	c := New(8)
	ix.SetInvalidationHook(c.Invalidate)
	c.PutReach(reachKey("a", 2), ix.Epoch(), []aindex.Hit{{Key: gk("b"), Prob: 0.9, Dist: 1}}, aindex.ReachStats{})
	if c.Len() != 1 {
		t.Fatal("entry not stored")
	}
	repl := aindex.New()
	if err := repl.Insert(core.NewIdentity(gk("a"), gk("c"), 0.8)); err != nil {
		t.Fatal(err)
	}
	ix.ReplaceComponent([]core.GlobalKey{gk("a"), gk("b")}, repl)
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after component surgery", c.Len())
	}
	if st := c.Stats(); st.Invalidations != 1 {
		t.Fatalf("Invalidations = %d, want 1", st.Invalidations)
	}
}
