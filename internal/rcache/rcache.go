// Package rcache implements the epoch-consistent result cache of the read
// path: memoized A' Reach result sets and whole per-level augmentation
// outcomes, keyed by (global key, level, min probability, kind) and stamped
// with the index snapshot epoch they were computed at.
//
// Invalidation is free by construction. Every mutation of the A' index bumps
// its snapshot epoch (PR 5), so an entry computed at epoch E simply stops
// validating once the index moves to E+1: the probe compares the stored
// stamp against the caller's current epoch and treats a mismatch as a miss,
// evicting the stale entry on the spot. No mutator ever has to enumerate
// which cached results a given edge change could affect — exactly the
// property that makes result caching safe under concurrent mutation.
//
// Two mutation classes cannot rely on aging alone and get an explicit flush
// (Invalidate): component surgery (ReplaceComponent — cluster rebalances and
// incremental-collection applies swap whole index regions at once) and WAL
// recovery (a restarted process must never serve a result computed by its
// previous life against a different tail of the journal). The distributed
// coordinator additionally folds the ring version into the epoch stamp, so
// a topology change mismatches every pre-rebalance entry.
//
// Structurally this is the 16-way sharded LRU of internal/cache with a
// composite key and validate-on-read epoch checking. Storing the epoch in
// the entry rather than the key keeps dead epochs from accumulating (a hot
// key occupies one slot, not one per epoch it was ever cached at) and gives
// the coherence tests an observable epoch-mismatch counter.
package rcache

import (
	"container/list"
	"math"
	"sync"
	"sync/atomic"

	"quepa/internal/aindex"
	"quepa/internal/core"
	"quepa/internal/telemetry"
)

const (
	shardCount = 16
	// shardThreshold mirrors internal/cache: below it a single shard keeps
	// exact global LRU order, above it the key space spreads over 16 mutexes.
	shardThreshold = 256
)

// Kind discriminates what a cached entry memoizes.
type Kind uint8

const (
	// KindReach caches the hit list of one Index.Reach(gk, level) traversal.
	KindReach Kind = iota + 1
	// KindOutcome caches a whole single-origin augmentation outcome (the
	// augmented objects after fetch and min-probability filtering).
	KindOutcome
	// KindScatter caches a distributed ReachScatter result (the coordinator
	// stamps it with ring version + index epoch combined).
	KindScatter
)

// Key identifies one memoized result. MinProb is zero for kinds whose
// computation does not depend on it (Reach filters nothing; the filter is
// applied downstream).
type Key struct {
	GK      core.GlobalKey
	Level   int
	MinProb float64
	Kind    Kind
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits            uint64
	Misses          uint64
	EpochMismatches uint64
	Evictions       uint64
	Invalidations   uint64
	Len             int
}

// Cache is the sharded epoch-validating result cache. Safe for concurrent
// use; a capacity of zero disables it (every probe misses, every store is
// dropped).
//
// Returned hit slices are shared with the cache and MUST be treated as
// immutable by callers — the augmenter and coordinator only ever read them.
type Cache struct {
	shards        []*shard
	capacity      atomic.Int64
	invalidations atomic.Uint64
	resizeMu      sync.Mutex
}

type shard struct {
	mu              sync.Mutex
	capacity        int
	ll              *list.List // front = most recently used
	items           map[Key]*list.Element
	hits            uint64
	misses          uint64
	epochMismatches uint64
	evictions       uint64
}

type entry struct {
	key   Key
	epoch uint64
	hits  []aindex.Hit
	stats aindex.ReachStats
	// outcome carries KindOutcome payloads. It is `any` so the cache does not
	// depend on the augmenter's types (augment imports rcache, not the
	// reverse).
	outcome any
}

// New creates a cache holding at most capacity results.
func New(capacity int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	n := 1
	if capacity >= shardThreshold {
		n = shardCount
	}
	c := &Cache{shards: make([]*shard, n)}
	c.capacity.Store(int64(capacity))
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: shardShare(capacity, i, n),
			ll:       list.New(),
			items:    map[Key]*list.Element{},
		}
	}
	return c
}

func shardShare(capacity, i, n int) int {
	share := capacity / n
	if i < capacity%n {
		share++
	}
	return share
}

// shardFor hashes the composite key over the shards (FNV-1a, inlined so the
// hot path does not allocate).
func (c *Cache) shardFor(k Key) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(k.GK.Database); i++ {
		h = (h ^ uint32(k.GK.Database[i])) * 16777619
	}
	h = (h ^ '.') * 16777619
	for i := 0; i < len(k.GK.Collection); i++ {
		h = (h ^ uint32(k.GK.Collection[i])) * 16777619
	}
	h = (h ^ '.') * 16777619
	for i := 0; i < len(k.GK.Key); i++ {
		h = (h ^ uint32(k.GK.Key[i])) * 16777619
	}
	h = (h ^ uint32(k.Kind)) * 16777619
	h = (h ^ uint32(k.Level)) * 16777619
	bits := math.Float64bits(k.MinProb)
	for i := 0; i < 8; i++ {
		h = (h ^ uint32(bits>>(8*i)&0xff)) * 16777619
	}
	return c.shards[h%shardCount]
}

// get probes for k at the given epoch. A present entry stamped with a
// different epoch counts as a miss AND an epoch mismatch, and is evicted on
// the spot: the index state it described is no longer reachable (epochs are
// monotonic), so keeping it would only displace live entries.
func (c *Cache) get(k Key, epoch uint64) (*entry, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if e.epoch != epoch {
		s.epochMismatches++
		s.misses++
		s.ll.Remove(el)
		delete(s.items, k)
		return nil, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	return e, true
}

func (c *Cache) put(e *entry) {
	if c == nil {
		return
	}
	s := c.shardFor(e.key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity == 0 {
		return
	}
	if el, ok := s.items[e.key]; ok {
		el.Value = e
		s.ll.MoveToFront(el)
		return
	}
	s.items[e.key] = s.ll.PushFront(e)
	s.evictLocked()
}

func (s *shard) evictLocked() {
	for s.ll.Len() > s.capacity {
		back := s.ll.Back()
		if back == nil {
			return
		}
		s.ll.Remove(back)
		delete(s.items, back.Value.(*entry).key)
		s.evictions++
	}
}

// GetReach returns the memoized hit list for k if one was stored at exactly
// the given epoch. The returned slice is shared — do not mutate it.
func (c *Cache) GetReach(k Key, epoch uint64) ([]aindex.Hit, aindex.ReachStats, bool) {
	e, ok := c.get(k, epoch)
	if !ok {
		return nil, aindex.ReachStats{}, false
	}
	return e.hits, e.stats, true
}

// PutReach memoizes a reach result computed at the given epoch. The cache
// retains hits without copying; the caller must not mutate it afterwards.
func (c *Cache) PutReach(k Key, epoch uint64, hits []aindex.Hit, stats aindex.ReachStats) {
	c.put(&entry{key: k, epoch: epoch, hits: hits, stats: stats})
}

// GetOutcome returns a memoized augmentation outcome stored at the epoch.
func (c *Cache) GetOutcome(k Key, epoch uint64) (any, bool) {
	e, ok := c.get(k, epoch)
	if !ok {
		return nil, false
	}
	return e.outcome, true
}

// PutOutcome memoizes an augmentation outcome computed at the given epoch.
func (c *Cache) PutOutcome(k Key, epoch uint64, v any) {
	c.put(&entry{key: k, epoch: epoch, outcome: v})
}

// Invalidate flushes every entry. ReplaceComponent and WAL recovery are
// wired to it; hit/miss statistics survive, and the flush is counted.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.invalidations.Add(1)
	for _, s := range c.shards {
		s.mu.Lock()
		s.ll.Init()
		s.items = map[Key]*list.Element{}
		s.mu.Unlock()
	}
}

// Resize changes the capacity, evicting LRU entries if the cache shrank.
// The shard count is fixed at construction.
func (c *Cache) Resize(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	c.capacity.Store(int64(capacity))
	n := len(c.shards)
	for i, s := range c.shards {
		s.mu.Lock()
		s.capacity = shardShare(capacity, i, n)
		s.evictLocked()
		s.mu.Unlock()
	}
}

// Capacity returns the configured capacity.
func (c *Cache) Capacity() int {
	if c == nil {
		return 0
	}
	return int(c.capacity.Load())
}

// Len returns the number of cached results.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.ll.Len()
		s.mu.Unlock()
	}
	return total
}

// Stats reports the cumulative counters. EpochMismatches counts probes that
// found an entry from another epoch — the observable trace of epoch-based
// invalidation doing its job (every mismatch is also a miss).
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	st := Stats{Invalidations: c.invalidations.Load()}
	for _, s := range c.shards {
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.EpochMismatches += s.epochMismatches
		st.Evictions += s.evictions
		st.Len += s.ll.Len()
		s.mu.Unlock()
	}
	return st
}

// HitRatio returns hits/(hits+misses), or 0 before any probe.
func (c *Cache) HitRatio() float64 {
	st := c.Stats()
	total := st.Hits + st.Misses
	if total == 0 {
		return 0
	}
	return float64(st.Hits) / float64(total)
}

// RegisterMetrics exports the cache on a telemetry registry as
// function-backed series read at scrape time, mirroring the object cache's
// export: the hot path pays nothing for it.
func (c *Cache) RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("quepa_rcache_hits_total", "result cache probes served from memory",
		func() uint64 { return c.Stats().Hits })
	r.CounterFunc("quepa_rcache_misses_total", "result cache probes that recomputed",
		func() uint64 { return c.Stats().Misses })
	r.CounterFunc("quepa_rcache_epoch_mismatch_total", "result cache probes that found an entry from another snapshot epoch",
		func() uint64 { return c.Stats().EpochMismatches })
	r.CounterFunc("quepa_rcache_evictions_total", "result cache entries evicted by capacity pressure",
		func() uint64 { return c.Stats().Evictions })
	r.CounterFunc("quepa_rcache_invalidations_total", "explicit result cache flushes (component surgery, recovery)",
		func() uint64 { return c.Stats().Invalidations })
	r.GaugeFunc("quepa_rcache_results", "results currently cached",
		func() float64 { return float64(c.Len()) })
	r.GaugeFunc("quepa_rcache_capacity", "configured result cache capacity",
		func() float64 { return float64(c.Capacity()) })
	r.GaugeFunc("quepa_rcache_hit_ratio", "result cache hits / (hits + misses) since process start",
		func() float64 { return c.HitRatio() })
}
