package optimizer

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"time"

	"quepa/internal/augment"
)

// This file persists run logs as JSON lines so a long-lived deployment can
// accumulate training data across restarts (the paper trains on the logs of
// ~2 million runs collected over time; Phase 1 of Section V).

// persistedLog is the on-disk form of one RunLog.
type persistedLog struct {
	ResultSize    int    `json:"resultSize"`
	AugmentedSize int    `json:"augmentedSize"`
	Level         int    `json:"level"`
	NumStores     int    `json:"numStores"`
	Distributed   bool   `json:"distributed,omitempty"`
	Strategy      string `json:"strategy"`
	BatchSize     int    `json:"batchSize,omitempty"`
	ThreadsSize   int    `json:"threadsSize,omitempty"`
	CacheSize     int    `json:"cacheSize,omitempty"`
	DurationNS    int64  `json:"durationNs"`
}

// SaveLogs streams the recorded run logs as JSON lines.
func (a *Adaptive) SaveLogs(w io.Writer) error {
	a.mu.Lock()
	logs := make([]RunLog, len(a.logs))
	copy(logs, a.logs)
	a.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range logs {
		rec := persistedLog{
			ResultSize:    r.Features.ResultSize,
			AugmentedSize: r.Features.AugmentedSize,
			Level:         r.Features.Level,
			NumStores:     r.Features.NumStores,
			Distributed:   r.Features.Distributed,
			Strategy:      r.Config.Strategy.String(),
			BatchSize:     r.Config.BatchSize,
			ThreadsSize:   r.Config.ThreadsSize,
			CacheSize:     r.Config.CacheSize,
			DurationNS:    r.Duration.Nanoseconds(),
		}
		if err := enc.Encode(&rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadLogs appends run logs from the JSON-lines form produced by SaveLogs.
// Automatic retraining is suppressed during the load; call Train afterwards.
func (a *Adaptive) LoadLogs(r io.Reader) (int, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line, loaded := 0, 0
	var batch []RunLog
	for scanner.Scan() {
		line++
		raw := scanner.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec persistedLog
		if err := json.Unmarshal(raw, &rec); err != nil {
			return loaded, fmt.Errorf("optimizer: line %d: %w", line, err)
		}
		strategy, err := augment.ParseStrategy(rec.Strategy)
		if err != nil {
			return loaded, fmt.Errorf("optimizer: line %d: %w", line, err)
		}
		if rec.DurationNS < 0 {
			return loaded, fmt.Errorf("optimizer: line %d: negative duration", line)
		}
		batch = append(batch, RunLog{
			Features: QueryFeatures{
				ResultSize:    rec.ResultSize,
				AugmentedSize: rec.AugmentedSize,
				Level:         rec.Level,
				NumStores:     rec.NumStores,
				Distributed:   rec.Distributed,
			},
			Config: augment.Config{
				Strategy:    strategy,
				BatchSize:   rec.BatchSize,
				ThreadsSize: rec.ThreadsSize,
				CacheSize:   rec.CacheSize,
			},
			Duration: time.Duration(rec.DurationNS),
		})
		loaded++
	}
	if err := scanner.Err(); err != nil {
		return loaded, err
	}
	a.mu.Lock()
	a.logs = append(a.logs, batch...)
	a.mu.Unlock()
	return loaded, nil
}
