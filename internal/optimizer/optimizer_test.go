package optimizer

import (
	"math/rand"
	"testing"
	"time"

	"quepa/internal/augment"
)

// syntheticCost is a ground-truth cost model with a clear structure the
// optimizer should learn:
//   - distributed deployments are dominated by round trips: batching wins;
//   - tiny centralized queries: sequential wins (thread overhead);
//   - everything else: outer-batch wins.
func syntheticCost(f QueryFeatures, cfg augment.Config) time.Duration {
	objects := float64(f.AugmentedSize)
	rtt := 0.05 // ms, centralized
	if f.Distributed {
		rtt = 2.0
	}
	queries := objects
	if cfg.Strategy.Batched() {
		bs := float64(cfg.BatchSize)
		if bs < 1 {
			bs = 1
		}
		queries = objects/bs + float64(f.NumStores)
	}
	threadFactor := 1.0
	setup := 0.0
	if cfg.Strategy.Concurrent() {
		t := float64(cfg.ThreadsSize)
		if t < 1 {
			t = 1
		}
		if t > 16 {
			t = 16
		}
		threadFactor = 1/t + 0.02*t // speedup with a small per-thread overhead
		setup = 0.1 * t             // fixed thread creation/synchronization cost
	}
	perObject := 0.001
	cost := queries*rtt*threadFactor + objects*perObject + setup
	return time.Duration(cost * float64(time.Millisecond))
}

// trainingConfigs is the configuration grid every query is "run" with.
func trainingConfigs() []augment.Config {
	return []augment.Config{
		{Strategy: augment.Sequential},
		{Strategy: augment.Batch, BatchSize: 100},
		{Strategy: augment.Batch, BatchSize: 1000},
		{Strategy: augment.Inner, ThreadsSize: 8},
		{Strategy: augment.Outer, ThreadsSize: 8},
		{Strategy: augment.OuterBatch, BatchSize: 100, ThreadsSize: 8},
		{Strategy: augment.OuterBatch, BatchSize: 1000, ThreadsSize: 16},
		{Strategy: augment.OuterInner, ThreadsSize: 8},
	}
}

// trainOn builds logs by running every strategy over a grid of queries with
// the synthetic cost model.
func trainOn(a *Adaptive) {
	grid := []QueryFeatures{}
	for _, rs := range []int{10, 100, 1000, 10000} {
		for _, stores := range []int{4, 7, 10, 13} {
			for _, dist := range []bool{false, true} {
				for _, level := range []int{0, 1} {
					grid = append(grid, QueryFeatures{
						ResultSize: rs, AugmentedSize: rs * 4, Level: level,
						NumStores: stores, Distributed: dist,
					})
				}
			}
		}
	}
	for _, f := range grid {
		for _, cfg := range trainingConfigs() {
			a.Log(RunLog{Features: f, Config: cfg, Duration: syntheticCost(f, cfg)})
		}
	}
}

func TestTrainRequiresLogs(t *testing.T) {
	a := NewAdaptive()
	if err := a.Train(); err == nil {
		t.Error("training without logs should fail")
	}
	if a.Trained() {
		t.Error("untrained optimizer reports trained")
	}
}

func TestUntrainedFallback(t *testing.T) {
	a := NewAdaptive()
	cfg := a.Choose(QueryFeatures{ResultSize: 100}, 500)
	if cfg.Strategy != augment.OuterBatch || cfg.CacheSize != 500 {
		t.Errorf("fallback config = %+v", cfg)
	}
}

func TestAdaptiveLearnsCostStructure(t *testing.T) {
	a := NewAdaptive()
	trainOn(a)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	if !a.Trained() {
		t.Fatal("not trained after Train")
	}

	// Distributed large query: a batched augmenter must be chosen.
	cfg := a.Choose(QueryFeatures{ResultSize: 10000, AugmentedSize: 40000, NumStores: 10, Distributed: true}, 0)
	if !cfg.Strategy.Batched() {
		t.Errorf("distributed large query chose %v", cfg.Strategy)
	}
	if cfg.BatchSize < 10 {
		t.Errorf("batched strategy with BatchSize %d", cfg.BatchSize)
	}

	// Regret bound: on held-out queries, the chosen configuration must be
	// within 3x of the best configuration in the training grid.
	heldOut := []QueryFeatures{
		{ResultSize: 10, AugmentedSize: 40, NumStores: 4},
		{ResultSize: 300, AugmentedSize: 1200, NumStores: 7},
		{ResultSize: 3000, AugmentedSize: 12000, NumStores: 10, Distributed: true},
		{ResultSize: 20000, AugmentedSize: 80000, NumStores: 13},
	}
	for _, f := range heldOut {
		chosen := syntheticCost(f, a.Choose(f, 0))
		best := time.Duration(1 << 62)
		for _, c := range trainingConfigs() {
			if cost := syntheticCost(f, c); cost < best {
				best = cost
			}
		}
		if chosen > 3*best {
			t.Errorf("query %+v: chosen cost %v vs best %v (regret > 3x)", f, chosen, best)
		}
	}
}

func TestAdaptiveBeatsRandomOnHeldOut(t *testing.T) {
	a := NewAdaptive()
	trainOn(a)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	random := NewRandom(10)
	var adaptiveTotal, randomTotal time.Duration
	for i := 0; i < 50; i++ {
		f := QueryFeatures{
			ResultSize:  50 + rng.Intn(20000),
			NumStores:   3 + rng.Intn(12),
			Distributed: rng.Intn(2) == 0,
			Level:       rng.Intn(2),
		}
		f.AugmentedSize = f.ResultSize * (2 + rng.Intn(5))
		adaptiveTotal += syntheticCost(f, a.Choose(f, 0))
		randomTotal += syntheticCost(f, random.Choose(f, 0))
	}
	if adaptiveTotal >= randomTotal {
		t.Errorf("ADAPTIVE (%v) not better than RANDOM (%v) on held-out queries", adaptiveTotal, randomTotal)
	}
}

func TestCacheSizeMovesIncrementally(t *testing.T) {
	a := NewAdaptive()
	// Logs where the best runs all use CACHE_SIZE = 1000.
	for i := 0; i < 20; i++ {
		f := QueryFeatures{ResultSize: 100 * (i + 1), AugmentedSize: 400 * (i + 1), NumStores: 5}
		a.Log(RunLog{Features: f, Config: augment.Config{Strategy: augment.Outer, ThreadsSize: 8, CacheSize: 1000}, Duration: time.Millisecond})
		a.Log(RunLog{Features: f, Config: augment.Config{Strategy: augment.Sequential, CacheSize: 0}, Duration: time.Second})
	}
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	cfg := a.Choose(QueryFeatures{ResultSize: 500, AugmentedSize: 2000, NumStores: 5}, 0)
	// (1000 - 0) / 10 = 100: one step toward the prediction.
	if cfg.CacheSize != 100 {
		t.Errorf("cache step = %d, want 100", cfg.CacheSize)
	}
	cfg = a.Choose(QueryFeatures{ResultSize: 500, AugmentedSize: 2000, NumStores: 5}, 900)
	if cfg.CacheSize != 910 {
		t.Errorf("cache step from 900 = %d, want 910", cfg.CacheSize)
	}
	// Moving down works too and never goes negative.
	cfg = a.Choose(QueryFeatures{ResultSize: 500, AugmentedSize: 2000, NumStores: 5}, 20000)
	if cfg.CacheSize >= 20000 {
		t.Errorf("cache did not shrink: %d", cfg.CacheSize)
	}
}

func TestAutoRetrain(t *testing.T) {
	a := NewAdaptive()
	a.RetrainEvery = 10
	f := QueryFeatures{ResultSize: 100, AugmentedSize: 400, NumStores: 5}
	for i := 0; i < 10; i++ {
		a.Log(RunLog{
			Features: QueryFeatures{ResultSize: 100 + i, AugmentedSize: 400, NumStores: 5},
			Config:   augment.Config{Strategy: augment.Outer, ThreadsSize: 4},
			Duration: time.Millisecond,
		})
	}
	if !a.Trained() {
		t.Fatal("auto-retrain did not fire")
	}
	if got := a.Choose(f, 0).Strategy; got != augment.Outer {
		t.Errorf("after auto-retrain chose %v", got)
	}
	if a.LogCount() != 10 {
		t.Errorf("LogCount = %d", a.LogCount())
	}
}

func TestTreeStrings(t *testing.T) {
	a := NewAdaptive()
	if len(a.TreeStrings()) != 0 {
		t.Error("untrained TreeStrings should be empty")
	}
	trainOn(a)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	trees := a.TreeStrings()
	if trees["T1"] == "" || trees["T4"] == "" {
		t.Errorf("missing tree renderings: %v", trees)
	}
}

func TestHumanRules(t *testing.T) {
	h := Human{}
	if h.Name() != "HUMAN" {
		t.Error("name")
	}
	if cfg := h.Choose(QueryFeatures{AugmentedSize: 8, NumStores: 3}, 0); cfg.Strategy != augment.Sequential {
		t.Errorf("tiny query: %v", cfg.Strategy)
	}
	if cfg := h.Choose(QueryFeatures{AugmentedSize: 5000, Distributed: true}, 0); !cfg.Strategy.Batched() {
		t.Errorf("distributed: %v", cfg.Strategy)
	}
	if cfg := h.Choose(QueryFeatures{AugmentedSize: 5000, NumStores: 10}, 0); cfg.Strategy != augment.OuterBatch {
		t.Errorf("large centralized: %v", cfg.Strategy)
	}
	if cfg := h.Choose(QueryFeatures{AugmentedSize: 200, NumStores: 10}, 0); cfg.Strategy != augment.Outer {
		t.Errorf("medium: %v", cfg.Strategy)
	}
}

func TestRandomCoversSpace(t *testing.T) {
	r := NewRandom(1)
	if r.Name() != "RANDOM" {
		t.Error("name")
	}
	seen := map[augment.Strategy]bool{}
	for i := 0; i < 200; i++ {
		cfg := r.Choose(QueryFeatures{}, 0)
		seen[cfg.Strategy] = true
		if cfg.BatchSize < 1 || cfg.ThreadsSize < 1 {
			t.Errorf("degenerate random config: %+v", cfg)
		}
	}
	if len(seen) != len(augment.Strategies) {
		t.Errorf("random covered %d strategies", len(seen))
	}
}

func TestOptimizerInterfaces(t *testing.T) {
	var _ Optimizer = NewAdaptive()
	var _ Optimizer = Human{}
	var _ Optimizer = NewRandom(0)
}
