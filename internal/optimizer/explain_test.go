package optimizer

import (
	"strings"
	"testing"
	"time"

	"quepa/internal/augment"
	"quepa/internal/telemetry"
)

func fallbackCount(reason string) uint64 {
	return telemetry.Default().CounterValue("quepa_optimizer_fallback_total",
		telemetry.L("reason", reason))
}

func TestUntrainedFallbackExplained(t *testing.T) {
	a := NewAdaptive()
	before := fallbackCount("untrained")
	cfg, d := a.ChooseExplained(QueryFeatures{ResultSize: 100}, 500)
	if cfg.Strategy != augment.OuterBatch || cfg.CacheSize != 500 {
		t.Errorf("fallback config = %+v", cfg)
	}
	if d.Trained {
		t.Error("untrained decision reports trained")
	}
	if d.FallbackReason == "" || !strings.Contains(d.FallbackReason, "not trained") {
		t.Errorf("fallback reason = %q", d.FallbackReason)
	}
	if d.Chosen.Strategy != "OUTER-BATCH" {
		t.Errorf("chosen = %+v", d.Chosen)
	}
	if got := fallbackCount("untrained"); got != before+1 {
		t.Errorf("optimizer_fallback_total{untrained} = %d, want %d", got, before+1)
	}
}

// TestParseStrategyFallbackExplained forces the T1 -> ParseStrategy error
// path: a tree trained on a label that no strategy parses back from.
// Strategy(99).String() produces exactly such a label.
func TestParseStrategyFallbackExplained(t *testing.T) {
	a := NewAdaptive()
	bogus := augment.Strategy(99)
	for i := 0; i < 4; i++ {
		a.Log(RunLog{
			Features: QueryFeatures{ResultSize: 10 * (i + 1), AugmentedSize: 40, NumStores: 4},
			Config:   augment.Config{Strategy: bogus, CacheSize: 100},
			Duration: time.Millisecond,
		})
	}
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	before := fallbackCount("parse_strategy")
	cfg, d := a.ChooseExplained(QueryFeatures{ResultSize: 10, AugmentedSize: 40, NumStores: 4}, 0)
	if cfg.Strategy != augment.OuterBatch {
		t.Errorf("strategy = %v, want forced OUTER-BATCH", cfg.Strategy)
	}
	if !d.Trained {
		t.Error("trained decision reports untrained")
	}
	if !strings.Contains(d.FallbackReason, "Strategy(99)") {
		t.Errorf("fallback reason = %q", d.FallbackReason)
	}
	if got := fallbackCount("parse_strategy"); got != before+1 {
		t.Errorf("optimizer_fallback_total{parse_strategy} = %d, want %d", got, before+1)
	}
}

func TestDecisionProvenance(t *testing.T) {
	a := NewAdaptive()
	trainOn(a)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	f := QueryFeatures{ResultSize: 1000, AugmentedSize: 4000, NumStores: 13, Distributed: true}
	cfg, d := a.ChooseExplained(f, 200)

	if d.Optimizer != "ADAPTIVE" || !d.Trained || d.FallbackReason != "" {
		t.Errorf("decision header = %+v", d)
	}
	wantNames := []string{"result_size", "augmented_size", "level", "num_stores", "distributed"}
	if len(d.FeatureNames) != len(wantNames) || d.FeatureNames[0] != "result_size" {
		t.Errorf("feature names = %v", d.FeatureNames)
	}
	wantVec := []float64{1000, 4000, 0, 13, 1}
	for i, v := range wantVec {
		if d.Features[i] != v {
			t.Errorf("features[%d] = %v, want %v", i, d.Features[i], v)
		}
	}
	if len(d.Trees) != 4 {
		t.Fatalf("trees = %+v", d.Trees)
	}
	t1 := d.Trees[0]
	if t1.Tree != "T1" || !t1.Consulted || t1.Clamped != cfg.Strategy.String() {
		t.Errorf("T1 vote = %+v vs strategy %v", t1, cfg.Strategy)
	}
	for _, tv := range d.Trees[1:] {
		if tv.Consulted && tv.Raw == "" {
			t.Errorf("%s consulted without raw prediction: %+v", tv.Tree, tv)
		}
		if !tv.Consulted && tv.Note == "" {
			t.Errorf("%s skipped without note: %+v", tv.Tree, tv)
		}
	}
	t4 := d.Trees[3]
	if !t4.Consulted || !strings.Contains(t4.Note, "delta rule") {
		t.Errorf("T4 vote = %+v", t4)
	}
	if d.Chosen.Strategy != cfg.Strategy.String() || d.Chosen.BatchSize != cfg.BatchSize ||
		d.Chosen.ThreadsSize != cfg.ThreadsSize || d.Chosen.CacheSize != cfg.CacheSize {
		t.Errorf("chosen %+v != config %+v", d.Chosen, cfg)
	}
}

// TestChooseParity guarantees the provenance path is observational: Choose
// and ChooseExplained return the identical configuration.
func TestChooseParity(t *testing.T) {
	a := NewAdaptive()
	trainOn(a)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	features := []QueryFeatures{
		{ResultSize: 10, AugmentedSize: 40, NumStores: 4},
		{ResultSize: 1000, AugmentedSize: 4000, NumStores: 13, Distributed: true},
		{ResultSize: 100, AugmentedSize: 400, Level: 1, NumStores: 7},
	}
	for _, f := range features {
		got := a.Choose(f, 300)
		want, _ := a.ChooseExplained(f, 300)
		if got != want {
			t.Errorf("Choose(%+v) = %+v, ChooseExplained = %+v", f, got, want)
		}
	}
}

func TestMaxLogsTrims(t *testing.T) {
	a := NewAdaptive()
	a.MaxLogs = 10
	for i := 0; i < 35; i++ {
		a.Log(RunLog{
			Features: QueryFeatures{ResultSize: i},
			Config:   augment.Config{Strategy: augment.Batch, BatchSize: 10},
			Duration: time.Millisecond,
		})
	}
	if n := a.LogCount(); n != 10 {
		t.Fatalf("log count = %d, want 10", n)
	}
	// The newest runs are the ones kept.
	a.mu.Lock()
	first := a.logs[0].Features.ResultSize
	last := a.logs[len(a.logs)-1].Features.ResultSize
	a.mu.Unlock()
	if first != 25 || last != 34 {
		t.Errorf("kept runs %d..%d, want 25..34", first, last)
	}
}

func TestRetrainCounter(t *testing.T) {
	reg := telemetry.Default()
	before := reg.CounterValue("quepa_optimizer_retrain_total")
	a := NewAdaptive()
	trainOn(a)
	if err := a.Train(); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("quepa_optimizer_retrain_total"); got <= before {
		t.Errorf("optimizer_retrain_total = %d, want > %d", got, before)
	}
}
