// Package optimizer implements the adaptive augmentation optimizer of
// Section V: a rule-based optimizer that learns, from the logs of completed
// augmentation runs, which augmenter and which parameters to use for a
// query. Four models are trained (Phase 2):
//
//	T1 — a C4.5 decision tree choosing the augmenter,
//	T2 — a regression tree predicting BATCH_SIZE (when T1 picks a batched
//	     augmenter),
//	T3 — a regression tree predicting THREADS_SIZE (when T1 picks a
//	     concurrent augmenter),
//	T4 — a regression tree predicting CACHE_SIZE.
//
// Prediction (Phase 3) composes them; the cache size moves toward the
// prediction by (predicted-current)/10 per query rather than jumping, since
// cache benefits accrue across future queries.
//
// The package also provides the HUMAN and RANDOM baseline optimizers the
// paper compares against in Fig. 12.
package optimizer

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"time"

	"quepa/internal/augment"
	"quepa/internal/explain"
	"quepa/internal/ml/c45"
	"quepa/internal/ml/reptree"
	"quepa/internal/telemetry"
)

// Fallback decisions — an untrained optimizer, or a T1 prediction that does
// not parse as a strategy — are no longer silent: they are counted here by
// reason and surfaced in the explain.Decision of the query that hit them.
var (
	fallbackUntrained = telemetry.NewCounter("quepa_optimizer_fallback_total",
		"adaptive optimizer decisions that fell back to the default OUTER-BATCH configuration",
		telemetry.L("reason", "untrained"))
	fallbackParse = telemetry.NewCounter("quepa_optimizer_fallback_total",
		"adaptive optimizer decisions that fell back to the default OUTER-BATCH configuration",
		telemetry.L("reason", "parse_strategy"))
	retrains = telemetry.NewCounter("quepa_optimizer_retrain_total",
		"successful Train calls on the adaptive optimizer")
)

// QueryFeatures are the query characteristics recorded in the run logs and
// used for prediction: "target database, number of original data objects in
// the result, number of augmented data objects" plus the deployment shape.
type QueryFeatures struct {
	ResultSize    int  // data objects in the local result
	AugmentedSize int  // data objects in the augmentation
	Level         int  // augmentation level
	NumStores     int  // databases in the polystore
	Distributed   bool // deployment: false = centralized
}

// featureNames must match vector().
var featureNames = []string{"result_size", "augmented_size", "level", "num_stores", "distributed"}

func (f QueryFeatures) vector() []float64 {
	d := 0.0
	if f.Distributed {
		d = 1
	}
	return []float64{
		float64(f.ResultSize),
		float64(f.AugmentedSize),
		float64(f.Level),
		float64(f.NumStores),
		d,
	}
}

// signature groups runs of the same query for best-run extraction.
func (f QueryFeatures) signature() string {
	return fmt.Sprintf("%d|%d|%d|%d|%v", f.ResultSize, f.AugmentedSize, f.Level, f.NumStores, f.Distributed)
}

// RunLog is one completed augmentation run (Phase 1).
type RunLog struct {
	Features QueryFeatures
	Config   augment.Config
	Duration time.Duration
}

// Optimizer chooses a configuration for a query. ADAPTIVE, HUMAN and RANDOM
// all satisfy it.
type Optimizer interface {
	Name() string
	// Choose returns the configuration to run the query with. currentCache
	// is the augmenter's present CACHE_SIZE (used by ADAPTIVE's incremental
	// adjustment; the baselines ignore it).
	Choose(f QueryFeatures, currentCache int) augment.Config
}

// Adaptive is the learned optimizer. It is safe for concurrent use.
type Adaptive struct {
	mu   sync.Mutex
	logs []RunLog
	t1   *c45.Tree
	t2   *reptree.Tree
	t3   *reptree.Tree
	t4   *reptree.Tree
	// RetrainEvery triggers automatic retraining after this many new logs
	// (0 disables; Train can always be called explicitly).
	RetrainEvery int
	// MaxLogs bounds the run-log ring (0 = unbounded). Long-running servers
	// set it so training cost and memory stay flat; the newest runs win.
	MaxLogs    int
	sinceTrain int
}

// NewAdaptive creates an untrained adaptive optimizer.
func NewAdaptive() *Adaptive { return &Adaptive{} }

// Name implements Optimizer.
func (a *Adaptive) Name() string { return "ADAPTIVE" }

// Log records a completed run (Phase 1) and retrains when the automatic
// retraining threshold is reached.
func (a *Adaptive) Log(r RunLog) {
	a.mu.Lock()
	a.logs = append(a.logs, r)
	if a.MaxLogs > 0 && len(a.logs) > a.MaxLogs {
		a.logs = append(a.logs[:0], a.logs[len(a.logs)-a.MaxLogs:]...)
	}
	a.sinceTrain++
	retrain := a.RetrainEvery > 0 && a.sinceTrain >= a.RetrainEvery
	a.mu.Unlock()
	if retrain {
		// Best effort: keep the old models on failure, but say so.
		if err := a.Train(); err != nil {
			telemetry.LogEvery(10, telemetry.LogWarn, "optimizer retrain failed",
				telemetry.F("error", err.Error()))
		}
	}
}

// LogCount returns the number of recorded runs.
func (a *Adaptive) LogCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.logs)
}

// Trained reports whether models are available.
func (a *Adaptive) Trained() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.t1 != nil
}

// Train fits T1–T4 on the recorded logs (Phase 2). For every distinct query
// (grouped by features) the fastest run provides the training example: its
// strategy labels T1, and its parameters feed the regression trees.
func (a *Adaptive) Train() error {
	a.mu.Lock()
	logs := make([]RunLog, len(a.logs))
	copy(logs, a.logs)
	a.mu.Unlock()

	if len(logs) == 0 {
		return fmt.Errorf("optimizer: no run logs to train on")
	}
	best := map[string]RunLog{}
	for _, r := range logs {
		sig := r.Features.signature()
		if old, ok := best[sig]; !ok || r.Duration < old.Duration {
			best[sig] = r
		}
	}

	var t1Examples []c45.Example
	var t2Examples, t3Examples, t4Examples []reptree.Example
	for _, r := range best {
		v := r.Features.vector()
		t1Examples = append(t1Examples, c45.Example{Features: v, Label: r.Config.Strategy.String()})
		if r.Config.Strategy.Batched() {
			t2Examples = append(t2Examples, reptree.Example{Features: v, Target: float64(r.Config.BatchSize)})
		}
		if r.Config.Strategy.Concurrent() {
			t3Examples = append(t3Examples, reptree.Example{Features: v, Target: float64(r.Config.ThreadsSize)})
		}
		t4Examples = append(t4Examples, reptree.Example{Features: v, Target: float64(r.Config.CacheSize)})
	}

	t1, err := c45.Train(t1Examples, featureNames, c45.Config{MinLeaf: 1, Prune: true})
	if err != nil {
		return fmt.Errorf("optimizer: training T1: %w", err)
	}
	train := func(examples []reptree.Example, what string) (*reptree.Tree, error) {
		if len(examples) == 0 {
			return nil, nil
		}
		t, err := reptree.Train(examples, featureNames, reptree.Config{MinLeaf: 1, Prune: len(examples) >= 16})
		if err != nil {
			return nil, fmt.Errorf("optimizer: training %s: %w", what, err)
		}
		return t, nil
	}
	t2, err := train(t2Examples, "T2")
	if err != nil {
		return err
	}
	t3, err := train(t3Examples, "T3")
	if err != nil {
		return err
	}
	t4, err := train(t4Examples, "T4")
	if err != nil {
		return err
	}

	a.mu.Lock()
	a.t1, a.t2, a.t3, a.t4 = t1, t2, t3, t4
	a.sinceTrain = 0
	a.mu.Unlock()
	retrains.Inc()
	telemetry.Log(telemetry.LogInfo, "optimizer retrain",
		telemetry.F("runs", len(logs)),
		telemetry.F("examples", len(t1Examples)))
	return nil
}

// Choose implements Optimizer (Phase 3). An untrained optimizer falls back
// to a safe default configuration.
func (a *Adaptive) Choose(f QueryFeatures, currentCache int) augment.Config {
	cfg, _ := a.ChooseExplained(f, currentCache)
	return cfg
}

// ChooseExplained is Choose plus full decision provenance: the feature
// vector handed to the trees, each tree's raw prediction and the clamping
// applied to it, and — when the decision fell back to OUTER-BATCH — the
// reason why. The config returned is identical to Choose's.
func (a *Adaptive) ChooseExplained(f QueryFeatures, currentCache int) (augment.Config, explain.Decision) {
	a.mu.Lock()
	t1, t2, t3, t4 := a.t1, a.t2, a.t3, a.t4
	a.mu.Unlock()

	d := explain.Decision{
		Optimizer:    a.Name(),
		FeatureNames: append([]string(nil), featureNames...),
		Features:     f.vector(),
	}
	if t1 == nil {
		cfg := augment.Config{Strategy: augment.OuterBatch, CacheSize: currentCache}
		d.FallbackReason = "optimizer not trained yet; using default OUTER-BATCH"
		d.Chosen = chosen(cfg)
		fallbackUntrained.Inc()
		telemetry.LogEvery(100, telemetry.LogWarn, "optimizer fallback",
			telemetry.F("reason", "untrained"))
		return cfg, d
	}
	d.Trained = true
	v := d.Features

	label := t1.Predict(v)
	strategy, err := augment.ParseStrategy(label)
	t1Vote := explain.TreeVote{Tree: "T1", Consulted: true, Raw: label}
	if err != nil {
		strategy = augment.OuterBatch
		d.FallbackReason = fmt.Sprintf("T1 predicted unknown strategy %q; forced OUTER-BATCH", label)
		fallbackParse.Inc()
		telemetry.LogEvery(100, telemetry.LogWarn, "optimizer fallback",
			telemetry.F("reason", "parse_strategy"), telemetry.F("label", label))
	}
	t1Vote.Clamped = strategy.String()
	d.Trees = append(d.Trees, t1Vote)

	cfg := augment.Config{Strategy: strategy, CacheSize: currentCache}
	t2Vote := explain.TreeVote{Tree: "T2"}
	switch {
	case !strategy.Batched():
		t2Vote.Note = "strategy not batched"
	case t2 == nil:
		t2Vote.Note = "not trained"
	default:
		raw := t2.Predict(v)
		cfg.BatchSize = clampInt(int(raw+0.5), 1, 1<<20)
		t2Vote.Consulted = true
		t2Vote.Raw = strconv.FormatFloat(raw, 'g', -1, 64)
		t2Vote.Clamped = strconv.Itoa(cfg.BatchSize)
	}
	d.Trees = append(d.Trees, t2Vote)

	t3Vote := explain.TreeVote{Tree: "T3"}
	switch {
	case !strategy.Concurrent():
		t3Vote.Note = "strategy not concurrent"
	case t3 == nil:
		t3Vote.Note = "not trained"
	default:
		raw := t3.Predict(v)
		cfg.ThreadsSize = clampInt(int(raw+0.5), 1, 4096)
		t3Vote.Consulted = true
		t3Vote.Raw = strconv.FormatFloat(raw, 'g', -1, 64)
		t3Vote.Clamped = strconv.Itoa(cfg.ThreadsSize)
	}
	d.Trees = append(d.Trees, t3Vote)

	t4Vote := explain.TreeVote{Tree: "T4"}
	if t4 == nil {
		t4Vote.Note = "not trained"
	} else {
		raw := t4.Predict(v)
		predicted := int(raw + 0.5)
		// Move a tenth of the way toward the prediction (Section V): cache
		// effects are spread over future queries, so no sudden jumps.
		cfg.CacheSize = currentCache + (predicted-currentCache)/10
		if cfg.CacheSize < 0 {
			cfg.CacheSize = 0
		}
		t4Vote.Consulted = true
		t4Vote.Raw = strconv.FormatFloat(raw, 'g', -1, 64)
		t4Vote.Clamped = strconv.Itoa(cfg.CacheSize)
		t4Vote.Note = "delta rule: current + (predicted-current)/10"
	}
	d.Trees = append(d.Trees, t4Vote)

	d.Chosen = chosen(cfg)
	return cfg, d
}

func chosen(cfg augment.Config) explain.ChosenConfig {
	return explain.ChosenConfig{
		Strategy:    cfg.Strategy.String(),
		BatchSize:   cfg.BatchSize,
		ThreadsSize: cfg.ThreadsSize,
		CacheSize:   cfg.CacheSize,
	}
}

// TreeStrings renders the trained models for inspection (Fig. 8).
func (a *Adaptive) TreeStrings() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := map[string]string{}
	if a.t1 != nil {
		out["T1"] = a.t1.String()
	}
	if a.t2 != nil {
		out["T2"] = a.t2.String()
	}
	if a.t3 != nil {
		out["T3"] = a.t3.String()
	}
	if a.t4 != nil {
		out["T4"] = a.t4.String()
	}
	return out
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Human is the expert-rules baseline of Fig. 12: the configuration a person
// familiar with Section VII's findings would pick.
type Human struct{}

// Name implements Optimizer.
func (Human) Name() string { return "HUMAN" }

// Choose implements Optimizer with rules distilled from the paper's own
// findings: batching dominates in distributed deployments, sequential wins
// tiny queries, outer-batch is the best all-rounder, threads track stores.
func (Human) Choose(f QueryFeatures, currentCache int) augment.Config {
	cache := 0
	if f.Distributed {
		cache = 10000
	}
	switch {
	case f.AugmentedSize <= 16 && f.NumStores <= 4 && !f.Distributed:
		return augment.Config{Strategy: augment.Sequential, CacheSize: cache}
	case f.Distributed:
		return augment.Config{Strategy: augment.Batch, BatchSize: 1000, CacheSize: cache}
	case f.AugmentedSize >= 1000:
		return augment.Config{Strategy: augment.OuterBatch, BatchSize: 100, ThreadsSize: 16, CacheSize: cache}
	default:
		return augment.Config{Strategy: augment.Outer, ThreadsSize: 8, CacheSize: cache}
	}
}

// Random is the random baseline of Fig. 12.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom creates a random optimizer with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Optimizer.
func (*Random) Name() string { return "RANDOM" }

var (
	randomBatchSizes  = []int{1, 10, 100, 1000, 10000}
	randomThreadSizes = []int{1, 2, 4, 8, 16, 32}
	randomCacheSizes  = []int{0, 100, 1000, 10000}
)

// Choose implements Optimizer.
func (r *Random) Choose(QueryFeatures, int) augment.Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return augment.Config{
		Strategy:    augment.Strategies[r.rng.Intn(len(augment.Strategies))],
		BatchSize:   randomBatchSizes[r.rng.Intn(len(randomBatchSizes))],
		ThreadsSize: randomThreadSizes[r.rng.Intn(len(randomThreadSizes))],
		CacheSize:   randomCacheSizes[r.rng.Intn(len(randomCacheSizes))],
	}
}
