package optimizer

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"quepa/internal/augment"
)

func TestLogPersistenceRoundTrip(t *testing.T) {
	a := NewAdaptive()
	logs := []RunLog{
		{
			Features: QueryFeatures{ResultSize: 100, AugmentedSize: 400, Level: 1, NumStores: 7, Distributed: true},
			Config:   augment.Config{Strategy: augment.OuterBatch, BatchSize: 100, ThreadsSize: 8, CacheSize: 1000},
			Duration: 42 * time.Millisecond,
		},
		{
			Features: QueryFeatures{ResultSize: 10, AugmentedSize: 40, NumStores: 4},
			Config:   augment.Config{Strategy: augment.Sequential},
			Duration: 7 * time.Millisecond,
		},
	}
	for _, r := range logs {
		a.Log(r)
	}
	var buf bytes.Buffer
	if err := a.SaveLogs(&buf); err != nil {
		t.Fatal(err)
	}

	b := NewAdaptive()
	n, err := b.LoadLogs(&buf)
	if err != nil || n != 2 {
		t.Fatalf("LoadLogs = %d, %v", n, err)
	}
	if b.LogCount() != 2 {
		t.Errorf("LogCount = %d", b.LogCount())
	}
	// The loaded optimizer trains and predicts like the original.
	if err := b.Train(); err != nil {
		t.Fatal(err)
	}
	cfg := b.Choose(QueryFeatures{ResultSize: 100, AugmentedSize: 400, Level: 1, NumStores: 7, Distributed: true}, 0)
	if cfg.Strategy != augment.OuterBatch {
		t.Errorf("loaded prediction = %v", cfg.Strategy)
	}
}

func TestLoadLogsErrors(t *testing.T) {
	a := NewAdaptive()
	cases := []string{
		`not json`,
		`{"strategy": "WARP-DRIVE", "durationNs": 1}`,
		`{"strategy": "BATCH", "durationNs": -5}`,
	}
	for _, c := range cases {
		if _, err := a.LoadLogs(strings.NewReader(c + "\n")); err == nil {
			t.Errorf("LoadLogs(%s) should fail", c)
		}
	}
	// Empty lines tolerated.
	n, err := a.LoadLogs(strings.NewReader("\n\n"))
	if err != nil || n != 0 {
		t.Errorf("empty input: %d, %v", n, err)
	}
}

func TestSaveEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewAdaptive().SaveLogs(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty save wrote %d bytes", buf.Len())
	}
}
