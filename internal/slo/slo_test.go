package slo

import (
	"strings"
	"testing"
	"time"

	"quepa/internal/telemetry"
)

// testEngine wires an engine to a private registry with second-scale windows
// so tests drive the clock explicitly through Sample.
func testEngine(t *testing.T, target, fastBurn float64, onTrip func(string)) (*Engine, *telemetry.Histogram, *telemetry.Counter) {
	t.Helper()
	reg := telemetry.NewRegistry()
	eng, err := New(Config{
		Objectives:  []Objective{{Route: "/search", Latency: 25 * time.Millisecond, Target: target}},
		FastBurn:    fastBurn,
		ShortWindow: 5 * time.Second,
		LongWindow:  60 * time.Second,
		Registry:    reg,
		OnFastBurn:  onTrip,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist := reg.Histogram(RequestHistogram, "", nil, telemetry.L("route", "/search"))
	errs := reg.Counter(ErrorCounter, "", telemetry.L("route", "/search"))
	return eng, hist, errs
}

func observeN(h *telemetry.Histogram, n int, d time.Duration) {
	for i := 0; i < n; i++ {
		h.Observe(d)
	}
}

func TestBurnRateMath(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	// Target 0.99 -> budget 0.01. 100 requests, 50 bad -> badFrac 0.5 ->
	// burn 50.
	eng, hist, _ := testEngine(t, 0.99, 1000, nil)
	base := time.Unix(1_700_000_000, 0)
	eng.Sample(base)
	observeN(hist, 50, time.Millisecond)     // good (<= 25ms objective)
	observeN(hist, 50, 100*time.Millisecond) // bad
	eng.Sample(base.Add(2 * time.Second))

	st := eng.Snapshot()[0]
	if st.BurnShort < 49.9 || st.BurnShort > 50.1 {
		t.Fatalf("short burn = %v, want ~50", st.BurnShort)
	}
	if st.BurnLong < 49.9 || st.BurnLong > 50.1 {
		t.Fatalf("long burn = %v, want ~50", st.BurnLong)
	}
	if st.FastBurn {
		t.Fatal("fast burn tripped below threshold 1000")
	}
}

func TestErrorsCountAgainstBudget(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	eng, hist, errs := testEngine(t, 0.99, 1000, nil)
	base := time.Unix(1_700_000_000, 0)
	eng.Sample(base)
	// All requests fast, but 10 of 100 were 5xx -> badFrac 0.1 -> burn 10.
	observeN(hist, 100, time.Millisecond)
	errs.Add(10)
	eng.Sample(base.Add(2 * time.Second))
	if b := eng.Snapshot()[0].BurnShort; b < 9.9 || b > 10.1 {
		t.Fatalf("burn = %v, want ~10", b)
	}
}

func TestBadCappedAtTotal(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	// Slow AND erroring requests are counted by both terms; the cap keeps
	// badFrac at 1, so burn tops out at 1/budget.
	eng, hist, errs := testEngine(t, 0.9, 1000, nil)
	base := time.Unix(1_700_000_000, 0)
	eng.Sample(base)
	observeN(hist, 10, time.Second)
	errs.Add(10)
	eng.Sample(base.Add(2 * time.Second))
	if b := eng.Snapshot()[0].BurnShort; b < 9.99 || b > 10.01 {
		t.Fatalf("burn = %v, want 10 (= 1/budget)", b)
	}
}

func TestFastBurnRequiresBothWindows(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	var trips []string
	eng, hist, _ := testEngine(t, 0.99, 14, func(route string) { trips = append(trips, route) })
	base := time.Unix(1_700_000_000, 0)

	// A long healthy hour: 10k good requests spread over the long window.
	now := base
	for i := 0; i < 60; i++ {
		observeN(hist, 100, time.Millisecond)
		now = now.Add(time.Second)
		eng.Sample(now)
	}
	if eng.Tripped() {
		t.Fatal("tripped while healthy")
	}

	// A short total outage: every request slow. The short window saturates
	// immediately; the long window still averages in the healthy hour, so
	// the first degraded samples must NOT page.
	observeN(hist, 50, time.Second)
	now = now.Add(time.Second)
	eng.Sample(now)
	st := eng.Snapshot()[0]
	if st.FastBurn {
		t.Fatalf("tripped on first degraded sample: short=%v long=%v", st.BurnShort, st.BurnLong)
	}

	// Sustained outage: once enough bad traffic accumulates, both windows
	// cross the threshold and the trip fires exactly once.
	for i := 0; i < 30; i++ {
		observeN(hist, 100, time.Second)
		now = now.Add(time.Second)
		eng.Sample(now)
	}
	if !eng.Tripped() {
		t.Fatal("sustained outage did not trip fast burn")
	}
	if eng.Healthy() {
		t.Fatal("Healthy() true while fast-burning")
	}
	if len(trips) != 1 || trips[0] != "/search" {
		t.Fatalf("OnFastBurn calls = %v, want exactly one for /search", trips)
	}

	// Recovery: good traffic drains the short window first; the engine must
	// come back healthy without a second trip.
	for i := 0; i < 120; i++ {
		observeN(hist, 100, time.Millisecond)
		now = now.Add(time.Second)
		eng.Sample(now)
	}
	if !eng.Healthy() {
		st := eng.Snapshot()[0]
		t.Fatalf("did not recover: short=%v long=%v", st.BurnShort, st.BurnLong)
	}
	if len(trips) != 1 {
		t.Fatalf("OnFastBurn fired %d times, want once for the engine's life", len(trips))
	}
}

func TestBurnGaugesExported(t *testing.T) {
	prev := telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(prev)
	reg := telemetry.NewRegistry()
	eng, err := New(Config{
		Objectives: []Objective{{Route: "/search", Latency: 25 * time.Millisecond}},
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	hist := reg.Histogram(RequestHistogram, "", nil, telemetry.L("route", "/search"))
	base := time.Unix(1_700_000_000, 0)
	eng.Sample(base)
	observeN(hist, 10, time.Second)
	eng.Sample(base.Add(time.Minute))

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Float division by the 0.01 budget is not exactly 100, so pin the series
	// identity in the exposition and the magnitude from the snapshot.
	for _, want := range []string{
		`quepa_slo_burn_rate{route="/search",window="5m"} `,
		`quepa_slo_burn_rate{route="/search",window="1h"} `,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing series %q:\n%s", want, out)
		}
	}
	if b := eng.Snapshot()[0].BurnShort; b < 99.9 || b > 100.1 {
		t.Fatalf("short burn = %v, want ~100", b)
	}
}

func TestConfigValidation(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, err := New(Config{Registry: reg}); err == nil {
		t.Fatal("no objectives accepted")
	}
	if _, err := New(Config{Registry: reg,
		Objectives: []Objective{{Route: "/x", Latency: time.Second, Target: 1.5}}}); err == nil {
		t.Fatal("target 1.5 accepted")
	}
	if _, err := New(Config{Registry: reg,
		Objectives: []Objective{{Route: "/x", Target: 0.9}}}); err == nil {
		t.Fatal("zero latency objective accepted")
	}
	if _, err := New(Config{Registry: reg, ShortWindow: time.Hour, LongWindow: time.Minute,
		Objectives: []Objective{{Route: "/x", Latency: time.Second, Target: 0.9}}}); err == nil {
		t.Fatal("inverted windows accepted")
	}
}

func TestStartStop(t *testing.T) {
	reg := telemetry.NewRegistry()
	eng, err := New(Config{
		Objectives: []Objective{{Route: "/x", Latency: time.Second, Target: 0.9}},
		Interval:   time.Millisecond,
		Registry:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	time.Sleep(5 * time.Millisecond)
	eng.Stop()
	// Stop without Start must not hang either.
	eng2, _ := New(Config{
		Objectives: []Objective{{Route: "/x", Latency: time.Second, Target: 0.9}},
		Registry:   telemetry.NewRegistry(),
	})
	eng2.Stop()
}

