// Package slo implements multi-window error-budget burn-rate alerting over
// the server's existing latency histograms (the Google SRE workbook's
// "alerting on SLOs" recipe, chapter 5).
//
// An Objective states that a fraction Target of a route's requests must
// complete within Latency. The complement, 1-Target, is the error budget.
// The Engine periodically samples the route's cumulative request histogram
// and error counter, and computes over two trailing windows (5m and 1h by
// default) the burn rate:
//
//	burn = badFraction(window) / (1 - Target)
//
// A burn rate of 1 spends the budget exactly at the rate the objective
// allows; a sustained burn of 14.4 over 1h spends ~2% of a 30-day budget in
// that hour. A route is fast-burning when BOTH windows exceed the FastBurn
// threshold — the short window makes the alert responsive, the long window
// keeps a brief spike from paging. The server turns fast burn into a 503 on
// /healthz (shed the replica before the budget is gone) and captures pprof
// profiles on the first trip, so the evidence of what was burning survives
// the incident.
//
// Good events are counted with Histogram.CountAtMost, which quantizes the
// objective down to the bucket grid — off-grid objectives undercount good
// events and therefore err toward alerting. Bad events are
// (total - good) + errors, capped at total: a slow 5xx may be counted by
// both terms, which again errs toward alerting, never away from it.
package slo

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"quepa/internal/telemetry"
)

// Defaults for Config fields left zero.
const (
	DefaultTarget      = 0.99
	DefaultFastBurn    = 14.0
	DefaultInterval    = 10 * time.Second
	DefaultShortWindow = 5 * time.Minute
	DefaultLongWindow  = time.Hour
)

// Metric names the engine reads and exports. RequestHistogram and
// ErrorCounter must be the series the HTTP layer writes (per-route label
// "route"); BurnGauge is exported by the engine per route and window.
const (
	RequestHistogram = "quepa_http_request_duration_seconds"
	ErrorCounter     = "quepa_http_errors_total"
	BurnGauge        = "quepa_slo_burn_rate"
)

// Objective is one route's latency SLO: Target of requests complete within
// Latency.
type Objective struct {
	Route   string
	Latency time.Duration
	Target  float64 // fraction in (0,1); 0 selects DefaultTarget
}

// Config assembles an Engine.
type Config struct {
	Objectives []Objective

	// FastBurn is the burn-rate threshold; a route fast-burns when both
	// windows are at or above it. 0 selects DefaultFastBurn.
	FastBurn float64
	// Interval is the sampling cadence of Run. 0 selects DefaultInterval.
	Interval time.Duration
	// ShortWindow/LongWindow are the two trailing alert windows. Zeroes
	// select 5m and 1h. Tests shrink them to keep wall-clock short.
	ShortWindow, LongWindow time.Duration
	// Registry supplies the histograms and counters to read and receives the
	// burn-rate gauges. Nil selects telemetry.Default().
	Registry *telemetry.Registry
	// OnFastBurn, when set, is invoked exactly once — on the first transition
	// of any route into fast burn for the engine's lifetime — with that
	// route. The server hooks pprof profile capture here.
	OnFastBurn func(route string)
}

// sample is one cumulative reading of a route's counters.
type sample struct {
	t     time.Time
	total uint64
	good  uint64
	errs  uint64
}

// routeState tracks one objective. Burn rates are published through atomics
// so the gauge exporters and /healthz never contend with sampling.
type routeState struct {
	obj  Objective
	hist *telemetry.Histogram
	errs *telemetry.Counter

	mu      sync.Mutex
	samples []sample

	burnShort atomic.Uint64 // math.Float64bits
	burnLong  atomic.Uint64
	fast      atomic.Bool
}

// Engine samples objectives and publishes burn rates.
type Engine struct {
	cfg     Config
	routes  []*routeState
	tripped atomic.Bool
	started atomic.Bool
	stop    chan struct{}
	done    chan struct{}
}

// New builds an engine, resolves the per-route metric handles, and registers
// the quepa_slo_burn_rate gauges. Call Start (or drive Sample directly in
// tests) afterwards.
func New(cfg Config) (*Engine, error) {
	if cfg.FastBurn <= 0 {
		cfg.FastBurn = DefaultFastBurn
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.ShortWindow <= 0 {
		cfg.ShortWindow = DefaultShortWindow
	}
	if cfg.LongWindow <= 0 {
		cfg.LongWindow = DefaultLongWindow
	}
	if cfg.ShortWindow >= cfg.LongWindow {
		return nil, fmt.Errorf("slo: short window %v must be below long window %v", cfg.ShortWindow, cfg.LongWindow)
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if len(cfg.Objectives) == 0 {
		return nil, fmt.Errorf("slo: no objectives")
	}
	e := &Engine{cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	for _, obj := range cfg.Objectives {
		if obj.Target == 0 {
			obj.Target = DefaultTarget
		}
		if obj.Target <= 0 || obj.Target >= 1 {
			return nil, fmt.Errorf("slo: route %s: target %v outside (0,1)", obj.Route, obj.Target)
		}
		if obj.Latency <= 0 {
			return nil, fmt.Errorf("slo: route %s: non-positive latency objective", obj.Route)
		}
		rs := &routeState{
			obj: obj,
			hist: cfg.Registry.Histogram(RequestHistogram,
				"latency of HTTP requests by route", nil, telemetry.L("route", obj.Route)),
			errs: cfg.Registry.Counter(ErrorCounter,
				"HTTP 5xx responses by route", telemetry.L("route", obj.Route)),
		}
		e.routes = append(e.routes, rs)
		for _, w := range []struct {
			label string
			bits  *atomic.Uint64
		}{
			{windowLabel(cfg.ShortWindow), &rs.burnShort},
			{windowLabel(cfg.LongWindow), &rs.burnLong},
		} {
			bits := w.bits
			cfg.Registry.GaugeFunc(BurnGauge,
				"error-budget burn rate by route and trailing window",
				func() float64 { return math.Float64frombits(bits.Load()) },
				telemetry.L("route", obj.Route), telemetry.L("window", w.label))
		}
	}
	return e, nil
}

// windowLabel renders a window compactly ("5m", "1h") for gauge labels.
func windowLabel(d time.Duration) string {
	switch {
	case d >= time.Hour && d%time.Hour == 0:
		return fmt.Sprintf("%dh", d/time.Hour)
	case d >= time.Minute && d%time.Minute == 0:
		return fmt.Sprintf("%dm", d/time.Minute)
	case d >= time.Second && d%time.Second == 0:
		return fmt.Sprintf("%ds", d/time.Second)
	}
	return d.String()
}

// Start launches the sampling loop. Stop halts it. Start is one-shot; a
// second call is a no-op.
func (e *Engine) Start() {
	if !e.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(e.done)
		t := time.NewTicker(e.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-e.stop:
				return
			case now := <-t.C:
				e.Sample(now)
			}
		}
	}()
}

// Stop halts the sampling loop started by Start and waits for it to exit.
// Without a prior Start it is a no-op.
func (e *Engine) Stop() {
	select {
	case <-e.stop:
	default:
		close(e.stop)
	}
	if e.started.Load() {
		<-e.done
	}
}

// Sample takes one cumulative reading per route at the given time and
// recomputes both windows. Exposed so tests drive deterministic clocks.
func (e *Engine) Sample(now time.Time) {
	for _, rs := range e.routes {
		e.sampleRoute(rs, now)
	}
}

func (e *Engine) sampleRoute(rs *routeState, now time.Time) {
	cur := sample{
		t:     now,
		total: rs.hist.Count(),
		good:  rs.hist.CountAtMost(rs.obj.Latency),
		errs:  rs.errs.Value(),
	}
	rs.mu.Lock()
	rs.samples = append(rs.samples, cur)
	// Trim history older than the long window, always keeping one sample at
	// or beyond the boundary so the long-window delta stays full-width.
	cutoff := now.Add(-e.cfg.LongWindow)
	trim := 0
	for trim < len(rs.samples)-1 && !rs.samples[trim+1].t.After(cutoff) {
		trim++
	}
	if trim > 0 {
		rs.samples = append(rs.samples[:0], rs.samples[trim:]...)
	}
	short := rs.burnLocked(now, e.cfg.ShortWindow)
	long := rs.burnLocked(now, e.cfg.LongWindow)
	rs.mu.Unlock()

	rs.burnShort.Store(math.Float64bits(short))
	rs.burnLong.Store(math.Float64bits(long))
	fast := short >= e.cfg.FastBurn && long >= e.cfg.FastBurn
	was := rs.fast.Swap(fast)
	if fast && !was {
		telemetry.Log(telemetry.LogWarn, "slo fast burn",
			telemetry.F("route", rs.obj.Route),
			telemetry.F("burn_short", short),
			telemetry.F("burn_long", long))
		if e.tripped.CompareAndSwap(false, true) && e.cfg.OnFastBurn != nil {
			e.cfg.OnFastBurn(rs.obj.Route)
		}
	}
}

// burnLocked computes the burn rate over the trailing window ending at now.
// The reference sample is the newest one at least window old; with less
// history than the window, the oldest sample stands in, so early burn rates
// reflect the shorter span actually observed (erring toward alerting).
func (rs *routeState) burnLocked(now time.Time, window time.Duration) float64 {
	if len(rs.samples) < 2 {
		return 0
	}
	newest := rs.samples[len(rs.samples)-1]
	boundary := now.Add(-window)
	ref := rs.samples[0]
	for _, s := range rs.samples[1 : len(rs.samples)-1] {
		if s.t.After(boundary) {
			break
		}
		ref = s
	}
	total := newest.total - ref.total
	if total == 0 {
		return 0
	}
	bad := (total - (newest.good - ref.good)) + (newest.errs - ref.errs)
	if bad > total {
		bad = total
	}
	budget := 1 - rs.obj.Target
	return (float64(bad) / float64(total)) / budget
}

// Healthy reports whether no route is fast-burning.
func (e *Engine) Healthy() bool { return len(e.FastBurning()) == 0 }

// FastBurning lists the routes currently in fast burn.
func (e *Engine) FastBurning() []string {
	var out []string
	for _, rs := range e.routes {
		if rs.fast.Load() {
			out = append(out, rs.obj.Route)
		}
	}
	return out
}

// Tripped reports whether any route has ever entered fast burn.
func (e *Engine) Tripped() bool { return e.tripped.Load() }

// Status is one route's objective and current burn, for /stats.
type Status struct {
	Route       string  `json:"route"`
	ObjectiveMS float64 `json:"objective_ms"`
	Target      float64 `json:"target"`
	WindowShort string  `json:"window_short"`
	WindowLong  string  `json:"window_long"`
	BurnShort   float64 `json:"burn_short"`
	BurnLong    float64 `json:"burn_long"`
	FastBurn    bool    `json:"fast_burn"`
}

// Snapshot returns every route's current status, in objective order.
func (e *Engine) Snapshot() []Status {
	out := make([]Status, 0, len(e.routes))
	for _, rs := range e.routes {
		out = append(out, Status{
			Route:       rs.obj.Route,
			ObjectiveMS: float64(rs.obj.Latency.Nanoseconds()) / 1e6,
			Target:      rs.obj.Target,
			WindowShort: windowLabel(e.cfg.ShortWindow),
			WindowLong:  windowLabel(e.cfg.LongWindow),
			BurnShort:   math.Float64frombits(rs.burnShort.Load()),
			BurnLong:    math.Float64frombits(rs.burnLong.Load()),
			FastBurn:    rs.fast.Load(),
		})
	}
	return out
}

// FastBurnThreshold exposes the configured threshold (for /stats).
func (e *Engine) FastBurnThreshold() float64 { return e.cfg.FastBurn }
