package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"quepa/internal/aindex"
	"quepa/internal/core"
	"quepa/internal/wire"
)

// PeerName renders the canonical name of shard i, the identity that appears
// in breaker snapshots, degradation reasons and trace attributes.
func PeerName(shard int) string { return fmt.Sprintf("peer-%d", shard) }

// Node is the peer-local half of the cluster: one shard of the A' index plus
// the full local polystore, served over the wire protocol. It implements
// core.Store (so wire.Serve accepts it) and the three cluster capabilities
// the wire server forwards: database-routed reads, frontier expansion and
// index snapshots. The index pointer is swapped atomically on snapshot
// installs, so rebalances never block in-flight expansions.
type Node struct {
	shard int
	name  string
	poly  *core.Polystore
	index atomic.Pointer[aindex.Index]
}

// NewNode builds the local service of one shard over its A' slice and the
// peer's polystore.
func NewNode(shard int, index *aindex.Index, poly *core.Polystore) *Node {
	n := &Node{shard: shard, name: PeerName(shard), poly: poly}
	n.index.Store(index)
	return n
}

// Shard returns the shard this node owns.
func (n *Node) Shard() int { return n.shard }

// Index returns the node's current A' shard.
func (n *Node) Index() *aindex.Index { return n.index.Load() }

// Name identifies the node in meta responses and status pages.
func (n *Node) Name() string { return n.name }

// Kind reports key-value: the node's own surface is keyed reads; the real
// store kinds live behind the database routing.
func (n *Node) Kind() core.StoreKind { return core.KindKeyValue }

// Collections lists the databases the node can route to — the closest
// meta-level analogue a multi-database shard has to collections.
func (n *Node) Collections() []string { return n.poly.Databases() }

// Get is unsupported: a shard node serves several databases, so reads must
// carry the database (wire routes them to GetDB).
func (n *Node) Get(ctx context.Context, collection, key string) (core.Object, error) {
	return core.Object{}, fmt.Errorf("cluster: %s requires database-routed reads", n.name)
}

// GetBatch is unsupported for the same reason as Get.
func (n *Node) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	return nil, fmt.Errorf("cluster: %s requires database-routed reads", n.name)
}

// Query is unsupported: native-language queries run on the coordinator's
// local replica, only keyed fetches are routed by ownership.
func (n *Node) Query(ctx context.Context, query string) ([]core.Object, error) {
	return nil, fmt.Errorf("cluster: %s does not serve native queries", n.name)
}

// GetDB serves one locally-owned key of the named database.
func (n *Node) GetDB(ctx context.Context, database, collection, key string) (core.Object, error) {
	store, err := n.poly.Database(database)
	if err != nil {
		return core.Object{}, err
	}
	return store.Get(ctx, collection, key)
}

// GetBatchDB serves a batch of locally-owned keys of one database's
// collection.
func (n *Node) GetBatchDB(ctx context.Context, database, collection string, keys []string) ([]core.Object, error) {
	return n.poly.FetchBatch(ctx, database, collection, keys)
}

// ExpandFrontier expands a weighted frontier one hop over the node's A'
// shard: for every (key, prob) pair, the direct p-relations of key
// contribute prob×edge hits, deduplicated by maximum probability and
// returned in key order so merges are deterministic on any peer.
func (n *Node) ExpandFrontier(ctx context.Context, keys []string, probs []float64) ([]wire.RemoteHit, wire.ReachInfo, error) {
	if len(keys) != len(probs) {
		return nil, wire.ReachInfo{}, fmt.Errorf("cluster: frontier of %d keys with %d probs", len(keys), len(probs))
	}
	ix := n.index.Load()
	var info wire.ReachInfo
	best := make(map[string]float64, len(keys))
	for i, k := range keys {
		gk, err := core.ParseGlobalKey(k)
		if err != nil {
			return nil, wire.ReachInfo{}, fmt.Errorf("cluster: frontier key %q: %w", k, err)
		}
		// Level 0 is exactly one hop (Definition 2), with the edge
		// probabilities as hit probabilities — the building block the
		// coordinator chains into multi-hop reachability.
		hits, st := ix.ReachWithStats(gk, 0)
		info.Nodes += st.Nodes
		info.Edges += st.Edges
		for _, h := range hits {
			p := probs[i] * h.Prob
			ks := h.Key.String()
			if p > best[ks] {
				best[ks] = p
			}
		}
	}
	out := make([]wire.RemoteHit, 0, len(best))
	for k, p := range best {
		out = append(out, wire.RemoteHit{Key: k, Prob: p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, info, nil
}

// IndexSnapshot serializes the node's A' shard in the binary checkpoint
// format, stamped with its mutation epoch — the payload of the snapshot
// wire op.
func (n *Node) IndexSnapshot(ctx context.Context) ([]byte, uint64, error) {
	edges, epoch := n.index.Load().EdgesWithEpoch()
	var buf bytes.Buffer
	if _, err := aindex.WriteSnapshot(&buf, edges, epoch); err != nil {
		return nil, 0, err
	}
	return buf.Bytes(), epoch, nil
}

// InstallSnapshot replaces the node's A' shard with the edges of a peer
// snapshot filtered to this node's ownership under ring — the receive side
// of bootstrap and rebalance. The swap is atomic; readers finish on the old
// shard. It returns the snapshot's epoch.
func (n *Node) InstallSnapshot(data []byte, ring *Ring) (uint64, error) {
	full, epoch, err := aindex.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		return 0, fmt.Errorf("cluster: installing snapshot: %w", err)
	}
	shard, err := shardIndex(full.Edges(), ring, n.shard)
	if err != nil {
		return 0, err
	}
	n.index.Store(shard)
	return epoch, nil
}

// MergeSnapshots installs the union of several peers' snapshots, filtered
// to this node's ownership: what a joining peer does after fetching the
// snapshot op from every existing member during a rebalance.
func (n *Node) MergeSnapshots(datas [][]byte, ring *Ring) error {
	seen := map[[2]core.GlobalKey]bool{}
	var edges []core.PRelation
	for _, data := range datas {
		full, _, err := aindex.ReadSnapshot(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("cluster: merging snapshots: %w", err)
		}
		for _, e := range full.Edges() {
			k := [2]core.GlobalKey{e.From, e.To}
			if !seen[k] {
				seen[k] = true
				edges = append(edges, e)
			}
		}
	}
	shard, err := shardIndex(edges, ring, n.shard)
	if err != nil {
		return err
	}
	n.index.Store(shard)
	return nil
}

// BuildShard carves one shard out of a full A' index: every p-relation with
// at least one endpoint owned by the shard. Keeping boundary edges whose far
// endpoint lives elsewhere is what lets a frontier expansion step off the
// shard — the coordinator routes the discovered key to its own owner on the
// next hop.
func BuildShard(full *aindex.Index, ring *Ring, shard int) (*aindex.Index, error) {
	return shardIndex(full.Edges(), ring, shard)
}

func shardIndex(edges []core.PRelation, ring *Ring, shard int) (*aindex.Index, error) {
	ix := aindex.New()
	for _, e := range edges {
		if ring.Owner(e.From) != shard && ring.Owner(e.To) != shard {
			continue
		}
		if err := ix.InsertRaw(e); err != nil {
			return nil, fmt.Errorf("cluster: building shard %d: %w", shard, err)
		}
	}
	return ix, nil
}
