package cluster

import (
	"context"
	"errors"
	"sync"

	"quepa/internal/core"
)

// RoutedStore presents one database of the cluster as a core.Store: keyed
// reads are routed by ring ownership — locally-owned keys hit the peer's
// own store, remote keys travel to their owning peer over the wire — while
// native-language queries run on the local replica (every peer builds the
// same deterministic workload, so the local replica is authoritative for
// query answering; only the fetch fan-out is partitioned). It is the store
// the coordinator's polystore registers in place of the plain one, so the
// whole augmenter stack — cache, coalescing, breakers, degradation — works
// unchanged on top of cluster routing.
type RoutedStore struct {
	database string
	local    core.Store
	coord    *Coordinator
}

// NewRoutedStore wraps one database's local store with ring routing.
func NewRoutedStore(database string, local core.Store, coord *Coordinator) *RoutedStore {
	return &RoutedStore{database: database, local: local, coord: coord}
}

// Name returns the database name, like the wrapped store does.
func (r *RoutedStore) Name() string { return r.local.Name() }

// Kind returns the wrapped store's kind.
func (r *RoutedStore) Kind() core.StoreKind { return r.local.Kind() }

// Collections lists the wrapped store's collections.
func (r *RoutedStore) Collections() []string { return r.local.Collections() }

// Unwrap returns the local store beneath the routing.
func (r *RoutedStore) Unwrap() core.Store { return r.local }

// KeyField forwards to the local store so the validator keeps working.
func (r *RoutedStore) KeyField(ctx context.Context, collection string) (string, error) {
	type keyResolver interface {
		KeyField(context.Context, string) (string, error)
	}
	if kr, ok := r.local.(keyResolver); ok {
		return kr.KeyField(ctx, collection)
	}
	return "", core.ErrUnsupportedQuery
}

// Get routes one key to its ring owner.
func (r *RoutedStore) Get(ctx context.Context, collection, key string) (core.Object, error) {
	ring, _ := r.coord.topo()
	owner := ring.Owner(core.NewGlobalKey(r.database, collection, key))
	if owner == r.coord.self && !r.coord.loopback {
		return r.local.Get(ctx, collection, key)
	}
	return r.coord.PeerGet(ctx, owner, r.database, collection, key)
}

// GetBatch splits the keys by owning shard, fans the slices out in parallel
// (local slice served by the local store) and merges the results in input
// key order, so the batch semantics of the plain store are preserved. A
// shard that fails fails the whole batch — the augmenter's degradation
// machinery decides what to drop, exactly as for a plain store error.
func (r *RoutedStore) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	ring, _ := r.coord.topo()
	byShard := map[int][]string{}
	for _, k := range keys {
		s := ring.Owner(core.NewGlobalKey(r.database, collection, k))
		byShard[s] = append(byShard[s], k)
	}
	if len(byShard) == 1 {
		for s, ks := range byShard {
			return r.fetchShard(ctx, s, collection, ks)
		}
	}
	var (
		mu    sync.Mutex
		wg    sync.WaitGroup
		found = make(map[string]core.Object, len(keys))
		errs  []error
	)
	for s, ks := range byShard {
		wg.Add(1)
		go func(s int, ks []string) {
			defer wg.Done()
			objs, err := r.fetchShard(ctx, s, collection, ks)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, err)
				return
			}
			for _, o := range objs {
				found[o.GK.Key] = o
			}
		}(s, ks)
	}
	wg.Wait()
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	out := make([]core.Object, 0, len(found))
	for _, k := range keys {
		if o, ok := found[k]; ok {
			out = append(out, o)
		}
	}
	return out, nil
}

func (r *RoutedStore) fetchShard(ctx context.Context, shard int, collection string, keys []string) ([]core.Object, error) {
	if shard == r.coord.self && !r.coord.loopback {
		return r.local.GetBatch(ctx, collection, keys)
	}
	return r.coord.PeerGetBatch(ctx, shard, r.database, collection, keys)
}

// Query runs the native-language query on the local replica.
func (r *RoutedStore) Query(ctx context.Context, query string) ([]core.Object, error) {
	return r.local.Query(ctx, query)
}

// RoundTrips forwards the local store's round-trip count when tracked.
func (r *RoutedStore) RoundTrips() uint64 {
	if ctr, ok := r.local.(core.Counter); ok {
		return ctr.RoundTrips()
	}
	return 0
}

// RoutePolystore builds a polystore whose every database is ring-routed
// through the coordinator: the polystore the cluster-mode server hands its
// augmenter.
func RoutePolystore(poly *core.Polystore, coord *Coordinator) (*core.Polystore, error) {
	routed := core.NewPolystore()
	for _, name := range poly.Databases() {
		st, err := poly.Database(name)
		if err != nil {
			return nil, err
		}
		if err := routed.Register(NewRoutedStore(name, st, coord)); err != nil {
			return nil, err
		}
	}
	return routed, nil
}
