package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"quepa/internal/core"
)

// sampleKeys generates n deterministic GlobalKey-shaped strings spanning a
// few databases and collections, the population the ring properties are
// checked over.
func sampleKeys(n int) []string {
	dbs := []string{"catalogue", "transactions", "discount", "similar-items"}
	colls := []string{"albums", "sales", "discounts", "items"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s.%s.k%04d", dbs[i%len(dbs)], colls[(i/3)%len(colls)], i)
	}
	return out
}

// TestRingOwnerIsStableAndInRange: exactly one owner per key at any peer
// count — Owner is deterministic across independently built rings (what
// lets peers route without a membership protocol) and always a valid shard.
func TestRingOwnerIsStableAndInRange(t *testing.T) {
	prop := func(key string, peers8 uint8) bool {
		n := int(peers8%8) + 1
		a, err := NewRing(n, 0, 0)
		if err != nil {
			return false
		}
		b, _ := NewRing(n, 0, 0)
		oa, ob := a.OwnerString(key), b.OwnerString(key)
		return oa == ob && oa >= 0 && oa < n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRingJoinRemapsOnlyToNewPeer: growing the ring from n to n+1 peers
// moves keys only TO the joining peer — a key never migrates between two
// surviving peers. This is the structural half of the ≤1/N guarantee and
// must hold for every key, so it is quick-checked over arbitrary strings.
func TestRingJoinRemapsOnlyToNewPeer(t *testing.T) {
	prop := func(key string, peers8 uint8) bool {
		n := int(peers8%7) + 1
		small, _ := NewRing(n, 0, 0)
		big, _ := NewRing(n+1, 0, 0)
		before, after := small.OwnerString(key), big.OwnerString(key)
		return before == after || after == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestRingLeaveRemapsOnlyFromRemovedPeer: shrinking from n to n-1 peers
// moves only the removed peer's keys; everything else stays put.
func TestRingLeaveRemapsOnlyFromRemovedPeer(t *testing.T) {
	prop := func(key string, peers8 uint8) bool {
		n := int(peers8%7) + 2
		big, _ := NewRing(n, 0, 0)
		small, _ := NewRing(n-1, 0, 0)
		before, after := big.OwnerString(key), small.OwnerString(key)
		if before == n-1 {
			return after >= 0 && after < n-1
		}
		return before == after
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestRingJoinRemapFraction: the quantitative half of the guarantee — over a
// large key population, the fraction moved by a join is close to the ideal
// 1/(n+1), never wildly above it.
func TestRingJoinRemapFraction(t *testing.T) {
	keys := sampleKeys(20000)
	for n := 1; n <= 6; n++ {
		small, _ := NewRing(n, 0, 0)
		big, _ := NewRing(n+1, 0, 0)
		moved := 0
		for _, k := range keys {
			if small.OwnerString(k) != big.OwnerString(k) {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		ideal := 1.0 / float64(n+1)
		if frac > 2.2*ideal {
			t.Errorf("join %d→%d peers moved %.3f of keys, ideal %.3f", n, n+1, frac, ideal)
		}
		if moved == 0 {
			t.Errorf("join %d→%d peers moved nothing — new peer owns no keys", n, n+1)
		}
	}
}

// TestRingBalance: with DefaultVnodes the per-peer key share stays within a
// reasonable band of the ideal 1/n.
func TestRingBalance(t *testing.T) {
	keys := sampleKeys(20000)
	for _, n := range []int{2, 4, 8} {
		r, _ := NewRing(n, 0, 0)
		counts := make([]int, n)
		for _, k := range keys {
			counts[r.OwnerString(k)]++
		}
		ideal := float64(len(keys)) / float64(n)
		for s, c := range counts {
			if ratio := float64(c) / ideal; ratio < 0.5 || ratio > 1.6 {
				t.Errorf("%d peers: shard %d owns %d keys (%.2f× ideal)", n, s, c, ratio)
			}
		}
	}
}

// TestRingRangesAgreeWithOwner: the published hash arcs are the routing
// truth — for sampled keys, the unique shard whose range contains the key's
// hash is its Owner, and the arcs tile the full 64-bit space exactly once.
func TestRingRangesAgreeWithOwner(t *testing.T) {
	r, err := NewRing(3, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	ranges := map[int][]Range{}
	total := uint64(0)
	points := 0
	for s := 0; s < r.Peers(); s++ {
		ranges[s] = r.Ranges(s)
		points += len(ranges[s])
		for _, rg := range ranges[s] {
			total += rg.To - rg.From + 1 // wraps deliberately for the wrap arc
		}
	}
	if points != r.Peers()*r.Vnodes() {
		t.Errorf("ranges hold %d arcs, want %d", points, r.Peers()*r.Vnodes())
	}
	if total != 0 { // sum of arc lengths mod 2^64 == 2^64 ≡ 0: exact tiling
		t.Errorf("arcs cover 2^64%+d hashes, want exact tiling", int64(total))
	}
	contains := func(rg Range, h uint64) bool {
		if rg.From <= rg.To {
			return h >= rg.From && h <= rg.To
		}
		return h >= rg.From || h <= rg.To // wrapping arc
	}
	for _, k := range sampleKeys(2000) {
		h := r.KeyHash(k)
		holders := []int{}
		for s := 0; s < r.Peers(); s++ {
			for _, rg := range ranges[s] {
				if contains(rg, h) {
					holders = append(holders, s)
					break
				}
			}
		}
		if len(holders) != 1 || holders[0] != r.OwnerString(k) {
			t.Fatalf("key %q hash %d: range holders %v, Owner %d", k, h, holders, r.OwnerString(k))
		}
	}
}

// TestRingVersionFingerprintsTopology: equal topologies agree, any change to
// peers, vnodes or seed is visible in the version.
func TestRingVersionFingerprintsTopology(t *testing.T) {
	a, _ := NewRing(3, 16, 7)
	b, _ := NewRing(3, 16, 7)
	if a.Version() != b.Version() {
		t.Error("identical topologies disagree on version")
	}
	for _, other := range []*Ring{
		mustRing(t, 4, 16, 7), mustRing(t, 3, 32, 7), mustRing(t, 3, 16, 8),
	} {
		if other.Version() == a.Version() {
			t.Errorf("topology %d/%d/%d shares a version with 3/16/7",
				other.Peers(), other.Vnodes(), other.Seed())
		}
	}
}

func mustRing(t *testing.T, n, vnodes int, seed uint64) *Ring {
	t.Helper()
	r, err := NewRing(n, vnodes, seed)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestRingRejectsEmpty: a ring needs at least one peer.
func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(0, 0, 0); err == nil {
		t.Error("0-peer ring accepted")
	}
	r := mustRing(t, 1, 0, 0)
	if got := r.Owner(core.NewGlobalKey("db", "c", "k")); got != 0 {
		t.Errorf("1-peer ring owner = %d", got)
	}
}
