package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/rcache"
	"quepa/internal/resilience"
	"quepa/internal/telemetry"
	"quepa/internal/wire"
)

// Scatter-gather telemetry: fan-out volume, merge traffic and the failure
// modes a burning peer produces.
var (
	scatterCalls = telemetry.NewCounter("quepa_cluster_scatter_total",
		"frontier-expansion calls fanned out by cluster coordinators (local and remote)")
	scatterKeys = telemetry.NewCounter("quepa_cluster_scatter_keys_total",
		"frontier keys shipped in scatter-gather expansions")
	scatterErrors = telemetry.NewCounter("quepa_cluster_scatter_errors_total",
		"scatter legs that failed (transport or remote error, breaker rejections excluded)")
	peerOpenRejects = telemetry.NewCounter("quepa_cluster_peer_open_total",
		"scatter legs rejected fast by an open per-peer circuit breaker")
	remoteFetches = telemetry.NewCounter("quepa_cluster_remote_fetch_total",
		"keyed fetches routed to a remote peer by ring ownership")
	rebalanceTotal = telemetry.NewCounter("quepa_cluster_rebalance_total",
		"topology swaps applied by SetTopology")
	deltaKeysShipped = telemetry.NewCounter("quepa_cluster_delta_keys_total",
		"frontier keys shipped by pipelined delta scatters (after pareto suppression)")
	deltaSuppressed = telemetry.NewCounter("quepa_cluster_delta_suppressed_total",
		"frontier arrivals dropped as pareto-dominated by the pipelined scatter")
)

// Config assembles a Coordinator. Ring, Peers and Self are required; every
// peer of a deployment must construct the identical Ring (same peer count,
// vnodes and seed — Version() fingerprints the agreement).
type Config struct {
	// Ring is the partition of key space this coordinator routes by.
	Ring *Ring
	// Peers holds one wire address per shard, indexed by shard ID.
	Peers []string
	// Self is this peer's shard ID.
	Self int
	// Node is the local shard service, consulted directly (no wire hop) for
	// self-owned work unless LoopbackSelf is set.
	Node *Node
	// LoopbackSelf routes self-owned work through the wire client too, so
	// every shard pays the same simulated network cost — the node-count
	// scaling benchmarks and the netsim chaos suite set it; production
	// deployments leave it false.
	LoopbackSelf bool
	// Breaker configures the per-peer circuit breakers.
	Breaker resilience.BreakerConfig
	// Client configures the pooled wire client dialed to each peer.
	Client wire.ClientConfig
	// Rcache, when non-nil, memoizes whole ReachScatter results keyed by
	// (origin, level) and validated against the scatter epoch — ring version
	// in the high bits, the local shard's index epoch in the low 48. A nil
	// cache disables memoization.
	Rcache *rcache.Cache
	// HopSync forces the legacy hop-synchronous scatter (a full barrier
	// between hops) instead of the pipelined delta traversal. The A/B
	// benchmarks and the equivalence tests set it; deployments leave it
	// false.
	HopSync bool
}

// Coordinator owns this peer's view of the cluster: the ring, one pooled
// multiplexed wire client per remote peer, and one circuit breaker per peer.
// It implements augment.Reacher — scatter-gather reachability — and backs
// the RoutedStore fetch path. A peer whose breaker is open costs one fast
// rejection and a "peer-open" degradation, never a failed query.
type Coordinator struct {
	mu    sync.RWMutex // guards ring+peers (swapped by SetTopology)
	ring  *Ring
	peers []string

	self     int
	node     *Node
	loopback bool
	breakers *resilience.Set
	ccfg     wire.ClientConfig
	rc       *rcache.Cache
	hopSync  bool

	cmu     sync.Mutex
	clients map[string]*wire.Client // lazily dialed, keyed by address
}

// NewCoordinator validates the topology and builds a coordinator. Clients
// are dialed lazily on first use, so construction succeeds before the other
// peers are up.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Ring == nil {
		return nil, errors.New("cluster: coordinator needs a ring")
	}
	if len(cfg.Peers) != cfg.Ring.Peers() {
		return nil, fmt.Errorf("cluster: ring of %d peers but %d addresses", cfg.Ring.Peers(), len(cfg.Peers))
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Ring.Peers() {
		return nil, fmt.Errorf("cluster: shard id %d outside ring of %d peers", cfg.Self, cfg.Ring.Peers())
	}
	if cfg.Node == nil && !cfg.LoopbackSelf {
		return nil, errors.New("cluster: coordinator needs a local node (or LoopbackSelf)")
	}
	return &Coordinator{
		ring:     cfg.Ring,
		peers:    append([]string(nil), cfg.Peers...),
		self:     cfg.Self,
		node:     cfg.Node,
		loopback: cfg.LoopbackSelf,
		breakers: resilience.NewSet(cfg.Breaker),
		ccfg:     cfg.Client,
		rc:       cfg.Rcache,
		hopSync:  cfg.HopSync,
		clients:  map[string]*wire.Client{},
	}, nil
}

// Self returns this peer's shard ID.
func (c *Coordinator) Self() int { return c.self }

// SetResultCache installs (or replaces) the scatter result cache after
// construction — the server shares one cache between the augmenter and the
// coordinator. Call it before serving traffic.
func (c *Coordinator) SetResultCache(rc *rcache.Cache) { c.rc = rc }

// Ring returns the current ring.
func (c *Coordinator) Ring() *Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring
}

// SetTopology swaps the ring and peer list atomically — the coordinator
// half of a rebalance. Existing wire clients to surviving addresses are
// kept; clients to departed peers are closed.
func (c *Coordinator) SetTopology(ring *Ring, peers []string) error {
	if ring == nil || len(peers) != ring.Peers() {
		return fmt.Errorf("cluster: topology of %d peers with %d addresses", ring.Peers(), len(peers))
	}
	keep := map[string]bool{}
	for _, a := range peers {
		keep[a] = true
	}
	c.mu.Lock()
	c.ring = ring
	c.peers = append([]string(nil), peers...)
	c.mu.Unlock()
	c.cmu.Lock()
	var drop []*wire.Client
	for addr, cl := range c.clients {
		if !keep[addr] {
			drop = append(drop, cl)
			delete(c.clients, addr)
		}
	}
	c.cmu.Unlock()
	for _, cl := range drop {
		cl.Close()
	}
	rebalanceTotal.Inc()
	return nil
}

// Close tears down every dialed peer client.
func (c *Coordinator) Close() {
	c.cmu.Lock()
	clients := make([]*wire.Client, 0, len(c.clients))
	for addr, cl := range c.clients {
		clients = append(clients, cl)
		delete(c.clients, addr)
	}
	c.cmu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
}

// topo snapshots the routing state one operation works off.
func (c *Coordinator) topo() (*Ring, []string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring, c.peers
}

// client returns the pooled wire client for addr, dialing on first use.
func (c *Coordinator) client(addr string) (*wire.Client, error) {
	c.cmu.Lock()
	if cl, ok := c.clients[addr]; ok {
		c.cmu.Unlock()
		return cl, nil
	}
	c.cmu.Unlock()
	cl, err := wire.DialConfig(addr, c.ccfg)
	if err != nil {
		return nil, err
	}
	c.cmu.Lock()
	if old, ok := c.clients[addr]; ok {
		c.cmu.Unlock()
		cl.Close()
		return old, nil
	}
	c.clients[addr] = cl
	c.cmu.Unlock()
	return cl, nil
}

// peerReason classifies a failed scatter leg for the degraded section.
func peerReason(err error) string {
	var ne net.Error
	switch {
	case errors.Is(err, resilience.ErrPeerOpen), errors.Is(err, resilience.ErrOpen):
		return "peer-open"
	case errors.Is(err, context.DeadlineExceeded), errors.As(err, &ne) && ne.Timeout():
		return "peer-timeout"
	default:
		return "peer-error: " + err.Error()
	}
}

// shardGroup is one shard's slice of a frontier, keys sorted for
// deterministic frames.
type shardGroup struct {
	shard int
	keys  []string
	probs []float64
}

// groupFrontier partitions a weighted frontier by ring ownership, keys
// sorted within each group and groups sorted by shard.
func groupFrontier(ring *Ring, frontier map[core.GlobalKey]float64) []shardGroup {
	byShard := map[int][]core.GlobalKey{}
	for k := range frontier {
		s := ring.Owner(k)
		byShard[s] = append(byShard[s], k)
	}
	out := make([]shardGroup, 0, len(byShard))
	for s, keys := range byShard {
		sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
		g := shardGroup{shard: s, keys: make([]string, len(keys)), probs: make([]float64, len(keys))}
		for i, k := range keys {
			g.keys[i] = k.String()
			g.probs[i] = frontier[k]
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].shard < out[j].shard })
	return out
}

// scatterResult is one shard's contribution to a hop.
type scatterResult struct {
	shard int
	hits  []wire.RemoteHit
	info  wire.ReachInfo
	wall  time.Duration // measured only for profiled queries
	err   error
}

// expandShard runs one scatter leg: the local node directly for self-owned
// groups (unless loopback is forced), the peer's wire client — guarded by
// its breaker — otherwise. Each remote leg runs under a cluster.scatter
// span tagged with the shard, continuing the caller's trace over the wire.
func (c *Coordinator) expandShard(ctx context.Context, peers []string, g shardGroup) (res scatterResult) {
	scatterCalls.Inc()
	scatterKeys.Add(uint64(len(g.keys)))
	res.shard = g.shard
	var start time.Time
	if explain.FromContext(ctx) != nil {
		start = time.Now()
		defer func() { res.wall = time.Since(start) }()
	}
	if g.shard == c.self && !c.loopback {
		res.hits, res.info, res.err = c.node.ExpandFrontier(ctx, g.keys, g.probs)
		return res
	}
	sctx := ctx
	var sp *telemetry.Span
	if telemetry.SpanFromContext(ctx) != nil {
		sctx, sp = telemetry.StartSpan(ctx, "cluster.scatter")
		sp.SetAttr("shard", strconv.Itoa(g.shard))
		sp.SetAttr("peer", peers[g.shard])
		sp.SetAttr("keys", strconv.Itoa(len(g.keys)))
	}
	res.err = func() error {
		b := c.breakers.Breaker(PeerName(g.shard))
		if err := b.Allow(); err != nil {
			peerOpenRejects.Inc()
			return fmt.Errorf("cluster: %s: %w", PeerName(g.shard), resilience.ErrPeerOpen)
		}
		cl, err := c.client(peers[g.shard])
		if err != nil {
			b.Record(err)
			return err
		}
		res.hits, res.info, err = cl.ExpandFrontier(sctx, g.keys, g.probs)
		b.Record(err)
		return err
	}()
	if sp != nil {
		if res.err != nil {
			sp.Mark(telemetry.FlagError)
			sp.SetAttr("error", res.err.Error())
		} else {
			sp.SetAttr("hits", strconv.Itoa(len(res.hits)))
		}
		sp.End()
	}
	if res.err != nil && !errors.Is(res.err, resilience.ErrPeerOpen) {
		scatterErrors.Inc()
	}
	return res
}

// ReachScatter is the distributed α of Definition 2: a weighted-frontier
// traversal over the sharded A' index whose hits, probabilities and
// distances equal aindex.Index.Reach over the unsharded index whenever
// every peer is healthy. A shard that fails mid-traversal is dropped from
// the remainder of the traversal and reported as a Degradation instead of
// failing the query.
//
// Two engines back it. The default pipelined engine dispatches per-peer
// delta frontiers — only arrivals that beat every earlier (distance, prob)
// pair for their key — and launches hop n+1 legs the moment a hop n
// response lands, with no barrier between hops. Config.HopSync selects the
// legacy engine, which expands one full hop at a time behind a barrier.
// When Config.Rcache is set, whole clean results are memoized against the
// scatter epoch, so a repeated origin costs zero network legs until the
// topology or the local shard's index moves.
//
// ReachScatter implements augment.Reacher.
func (c *Coordinator) ReachScatter(ctx context.Context, origin core.GlobalKey, level int) ([]aindex.Hit, aindex.ReachStats, []augment.Degradation) {
	ring, peers := c.topo()
	var (
		key   rcache.Key
		epoch uint64
	)
	if c.rc != nil {
		key = rcache.Key{GK: origin, Level: level, Kind: rcache.KindScatter}
		epoch = c.scatterEpoch(ring)
		if hits, stats, ok := c.rc.GetReach(key, epoch); ok {
			explain.FromContext(ctx).RcacheHits(1)
			return hits, stats, nil
		}
	}
	var (
		hits  []aindex.Hit
		stats aindex.ReachStats
		degs  []augment.Degradation
	)
	if c.hopSync {
		hits, stats, degs = c.reachScatterSync(ctx, ring, peers, origin, level)
	} else {
		hits, stats, degs = c.reachScatterPipelined(ctx, ring, peers, origin, level)
	}
	// Only clean traversals are cacheable: a degraded result reflects a
	// transient peer failure, not the index, and must not outlive it.
	if c.rc != nil && len(degs) == 0 {
		c.rc.PutReach(key, epoch, hits, stats)
	}
	return hits, stats, degs
}

// scatterEpoch fingerprints the cluster state a cached scatter result is
// valid against: the ring version in the high 16 bits (a rebalance re-keys
// every entry for free) and the local shard's index epoch in the low 48
// (local surgery and snapshot installs re-key too). Mutations that land
// only on remote shards are covered by the explicit Invalidate hook the
// server wires to ReplaceComponent and WAL recovery, not by this
// fingerprint.
func (c *Coordinator) scatterEpoch(ring *Ring) uint64 {
	var idx uint64
	if c.node != nil {
		idx = c.node.Index().Epoch()
	}
	return ring.Version()<<48 | idx&(1<<48-1)
}

// reachScatterSync is the legacy hop-synchronous engine: each hop groups
// the frontier by owning shard, expands every group in parallel and merges
// behind a full barrier before the next hop starts. With every peer healthy
// even its traversal stats equal the single-node reference traversal.
func (c *Coordinator) reachScatterSync(ctx context.Context, ring *Ring, peers []string, origin core.GlobalKey, level int) ([]aindex.Hit, aindex.ReachStats, []augment.Degradation) {
	rec := explain.FromContext(ctx)
	var stats aindex.ReachStats
	maxHops := level + 1
	best := map[core.GlobalKey]aindex.Hit{origin: {Key: origin, Prob: 1, Dist: 0}}
	frontier := map[core.GlobalKey]float64{origin: 1}
	degraded := map[int]augment.Degradation{}
	for hop := 1; hop <= maxHops && len(frontier) > 0; hop++ {
		groups := groupFrontier(ring, frontier)
		// A shard already dropped this traversal is skipped for the rest of
		// it: its sub-frontier is lost, the healthy shards keep going.
		live := groups[:0]
		for _, g := range groups {
			if _, dead := degraded[g.shard]; !dead {
				live = append(live, g)
			}
		}
		results := make([]scatterResult, len(live))
		if len(live) == 1 {
			results[0] = c.expandShard(ctx, peers, live[0])
		} else {
			var wg sync.WaitGroup
			for i, g := range live {
				wg.Add(1)
				go func(i int, g shardGroup) {
					defer wg.Done()
					results[i] = c.expandShard(ctx, peers, g)
				}(i, g)
			}
			wg.Wait()
		}
		next := map[core.GlobalKey]float64{}
		for i, res := range results {
			if rec != nil {
				rec.ShardScatter(res.shard, PeerName(res.shard), len(live[i].keys), len(res.hits), res.wall, res.err != nil)
			}
			if res.err != nil {
				if _, seen := degraded[res.shard]; !seen {
					degraded[res.shard] = augment.Degradation{
						Store:  PeerName(res.shard),
						Reason: peerReason(res.err),
						Level:  level,
					}
				}
				continue
			}
			stats.Nodes += res.info.Nodes
			stats.Edges += res.info.Edges
			for _, h := range res.hits {
				gk, err := core.ParseGlobalKey(h.Key)
				if err != nil {
					continue // a peer speaking garbage cannot poison the merge
				}
				old, seen := best[gk]
				if !seen || h.Prob > old.Prob {
					dist := hop
					if seen && old.Dist < hop {
						dist = old.Dist
					}
					best[gk] = aindex.Hit{Key: gk, Prob: h.Prob, Dist: dist}
					if h.Prob > next[gk] {
						next[gk] = h.Prob
					}
				}
			}
		}
		frontier = next
	}
	out := make([]aindex.Hit, 0, len(best)-1)
	for k, h := range best {
		if k == origin {
			continue
		}
		out = append(out, h)
	}
	aindex.SortHits(out)
	degs := make([]augment.Degradation, 0, len(degraded))
	for _, d := range degraded {
		degs = append(degs, d)
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i].Store < degs[j].Store })
	return out, stats, degs
}

// paretoPair is one undominated (hop, prob) discovery for a key. A pair
// dominates another when it is no longer and no less probable; only
// undominated arrivals are merged and re-dispatched, which is what makes
// the out-of-order pipelined traversal converge to the same fixed point as
// the hop-ordered one: for every key, Prob is the maximum chain probability
// and Dist the minimum chain length over all chains of at most maxHops.
type paretoPair struct {
	hop  int
	prob float64
}

// pipeGroup is one in-flight pipelined dispatch: a shard's slice of
// newly-improved frontier keys, all carrying the same hop tag.
type pipeGroup struct {
	shardGroup
	tag int
}

// pipeScatter is the state of one pipelined traversal. One mutex guards the
// merge state; legs run outside it and re-enter through absorb.
type pipeScatter struct {
	c     *Coordinator
	ctx   context.Context
	ring  *Ring
	peers []string
	rec   *explain.Recorder
	level int
	// maxHops caps chain length at level+1, exactly as the reference
	// traversal does.
	maxHops int

	mu       sync.Mutex
	best     map[core.GlobalKey]aindex.Hit
	pareto   map[core.GlobalKey][]paretoPair
	degraded map[int]augment.Degradation
	stats    aindex.ReachStats
	inflight int
	shipped  int
	done     chan struct{}
}

// reachScatterPipelined is the delta-frontier engine: there is no hop
// barrier — the moment one leg's response lands, its undominated arrivals
// are grouped by owner and dispatched at the next hop tag while sibling
// legs of the previous hop are still in flight. Each (key, prob, hop)
// triple is shipped to a peer at most once; dominated re-arrivals (a cycle,
// or a slower chain beaten to the key) are suppressed entirely, which is
// the "delta" in delta frontier.
func (c *Coordinator) reachScatterPipelined(ctx context.Context, ring *Ring, peers []string, origin core.GlobalKey, level int) ([]aindex.Hit, aindex.ReachStats, []augment.Degradation) {
	p := &pipeScatter{
		c:        c,
		ctx:      ctx,
		ring:     ring,
		peers:    peers,
		rec:      explain.FromContext(ctx),
		level:    level,
		maxHops:  level + 1,
		best:     map[core.GlobalKey]aindex.Hit{origin: {Key: origin, Prob: 1, Dist: 0}},
		pareto:   map[core.GlobalKey][]paretoPair{origin: {{hop: 0, prob: 1}}},
		degraded: map[int]augment.Degradation{},
		done:     make(chan struct{}),
	}
	if p.maxHops >= 1 {
		g := pipeGroup{
			shardGroup: shardGroup{shard: ring.Owner(origin), keys: []string{origin.String()}, probs: []float64{1}},
			tag:        1,
		}
		p.mu.Lock()
		p.launch([]pipeGroup{g})
		p.mu.Unlock()
	} else {
		close(p.done)
	}
	<-p.done
	deltaKeysShipped.Add(uint64(p.shipped))
	p.rec.DeltaFrontierKeys(p.shipped)
	out := make([]aindex.Hit, 0, len(p.best)-1)
	for k, h := range p.best {
		if k == origin {
			continue
		}
		out = append(out, h)
	}
	aindex.SortHits(out)
	degs := make([]augment.Degradation, 0, len(p.degraded))
	for _, d := range p.degraded {
		degs = append(degs, d)
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i].Store < degs[j].Store })
	return out, p.stats, degs
}

// launch registers groups as in-flight and spawns one leg per group. The
// caller must hold p.mu; counting before spawning keeps inflight from
// transiently hitting zero while work remains.
func (p *pipeScatter) launch(groups []pipeGroup) {
	p.inflight += len(groups)
	for _, g := range groups {
		p.shipped += len(g.keys)
		go p.run(g)
	}
}

func (p *pipeScatter) run(g pipeGroup) {
	res := p.c.expandShard(p.ctx, p.peers, g.shardGroup)
	p.absorb(g, res)
}

// absorb merges one completed leg and immediately dispatches whatever it
// improved — this is the pipelining: hop n+1 legs launch while other hop-n
// legs are still in flight.
func (p *pipeScatter) absorb(g pipeGroup, res scatterResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rec != nil {
		p.rec.ShardScatter(res.shard, PeerName(res.shard), len(g.keys), len(res.hits), res.wall, res.err != nil)
	}
	var next []pipeGroup
	if res.err != nil {
		// A failed shard is degraded for the rest of this traversal: its
		// sub-frontier is lost, the healthy shards keep going — the same
		// contract as the hop-synchronous engine.
		if _, seen := p.degraded[res.shard]; !seen {
			p.degraded[res.shard] = augment.Degradation{
				Store:  PeerName(res.shard),
				Reason: peerReason(res.err),
				Level:  p.level,
			}
		}
	} else {
		p.stats.Nodes += res.info.Nodes
		p.stats.Edges += res.info.Edges
		improved := map[core.GlobalKey]float64{}
		for _, h := range res.hits {
			gk, err := core.ParseGlobalKey(h.Key)
			if err != nil {
				continue // a peer speaking garbage cannot poison the merge
			}
			if p.merge(gk, h.Prob, g.tag) {
				if pr, ok := improved[gk]; !ok || h.Prob > pr {
					improved[gk] = h.Prob
				}
			} else {
				deltaSuppressed.Inc()
			}
		}
		if g.tag < p.maxHops && len(improved) > 0 {
			for _, sg := range groupFrontier(p.ring, improved) {
				if _, dead := p.degraded[sg.shard]; dead {
					continue
				}
				next = append(next, pipeGroup{shardGroup: sg, tag: g.tag + 1})
			}
		}
	}
	p.launch(next)
	p.inflight--
	if p.inflight == 0 {
		close(p.done)
	}
}

// merge folds one arrival into the key's pareto set and best entry. It
// reports whether (hop, prob) was undominated — the condition under which
// the arrival must be re-dispatched. Re-dispatching on a shorter hop even
// when the probability does not improve is required for distance
// correctness: a slow two-hop chain must still shorten distances downstream
// after a fast five-hop chain delivered a higher probability first.
func (p *pipeScatter) merge(gk core.GlobalKey, prob float64, hop int) bool {
	pairs := p.pareto[gk]
	for _, q := range pairs {
		if q.hop <= hop && q.prob >= prob {
			return false
		}
	}
	kept := pairs[:0]
	for _, q := range pairs {
		if !(hop <= q.hop && prob >= q.prob) {
			kept = append(kept, q)
		}
	}
	p.pareto[gk] = append(kept, paretoPair{hop: hop, prob: prob})
	h, seen := p.best[gk]
	if !seen {
		p.best[gk] = aindex.Hit{Key: gk, Prob: prob, Dist: hop}
		return true
	}
	if prob > h.Prob {
		h.Prob = prob
	}
	if hop < h.Dist {
		h.Dist = hop
	}
	p.best[gk] = h
	return true
}

// PeerGet fetches one remote-owned key from the peer owning shard, guarded
// by its breaker. Failures come back wrapped so the augmenter's degradation
// machinery classifies an open breaker as "peer-open".
func (c *Coordinator) PeerGet(ctx context.Context, shard int, database, collection, key string) (core.Object, error) {
	_, peers := c.topo()
	b := c.breakers.Breaker(PeerName(shard))
	if err := b.Allow(); err != nil {
		peerOpenRejects.Inc()
		return core.Object{}, fmt.Errorf("cluster: %s: %w", PeerName(shard), resilience.ErrPeerOpen)
	}
	cl, err := c.client(peers[shard])
	if err != nil {
		b.Record(err)
		return core.Object{}, err
	}
	remoteFetches.Inc()
	o, err := cl.GetDB(ctx, database, collection, key)
	b.Record(err)
	return o, err
}

// PeerGetBatch fetches a batch of remote-owned keys from one peer.
func (c *Coordinator) PeerGetBatch(ctx context.Context, shard int, database, collection string, keys []string) ([]core.Object, error) {
	_, peers := c.topo()
	b := c.breakers.Breaker(PeerName(shard))
	if err := b.Allow(); err != nil {
		peerOpenRejects.Inc()
		return nil, fmt.Errorf("cluster: %s: %w", PeerName(shard), resilience.ErrPeerOpen)
	}
	cl, err := c.client(peers[shard])
	if err != nil {
		b.Record(err)
		return nil, err
	}
	remoteFetches.Inc()
	objs, err := cl.GetBatchDB(ctx, database, collection, keys)
	b.Record(err)
	return objs, err
}

// FetchPeerSnapshot downloads the epoch-stamped A' shard checkpoint of one
// peer — the transfer leg of bootstrap and rebalance.
func (c *Coordinator) FetchPeerSnapshot(ctx context.Context, shard int) ([]byte, uint64, error) {
	_, peers := c.topo()
	cl, err := c.client(peers[shard])
	if err != nil {
		return nil, 0, err
	}
	return cl.FetchSnapshot(ctx)
}

// PeerStatus is one peer's row in the cluster section of /healthz and
// /stats.
type PeerStatus struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Self  bool   `json:"self,omitempty"`
	// Breaker is the coordinator's circuit view of the peer; absent for
	// self (a peer does not guard itself) and for peers never yet called.
	Breaker *resilience.BreakerStatus `json:"breaker,omitempty"`
	// OwnedRanges counts the hash-space arcs the peer owns; Ranges carries
	// them when the caller asked for detail (/stats does, /healthz doesn't).
	OwnedRanges int     `json:"owned_ranges"`
	Ranges      []Range `json:"ranges,omitempty"`
}

// Status is the cluster section of /healthz and /stats: ring identity plus
// one row per peer.
type Status struct {
	RingVersion uint64       `json:"ring_version"`
	Peers       int          `json:"peers"`
	Vnodes      int          `json:"vnodes"`
	Self        int          `json:"self"`
	PeerList    []PeerStatus `json:"peer_list"`
}

// Status snapshots the cluster for the status pages. includeRanges attaches
// every peer's owned hash arcs (verbose; /stats wants it, /healthz doesn't).
func (c *Coordinator) Status(includeRanges bool) Status {
	ring, peers := c.topo()
	byName := map[string]resilience.BreakerStatus{}
	for _, bs := range c.breakers.Snapshot() {
		byName[bs.Store] = bs
	}
	st := Status{
		RingVersion: ring.Version(),
		Peers:       ring.Peers(),
		Vnodes:      ring.Vnodes(),
		Self:        c.self,
	}
	for shard, addr := range peers {
		ranges := ring.Ranges(shard)
		ps := PeerStatus{Shard: shard, Addr: addr, Self: shard == c.self, OwnedRanges: len(ranges)}
		if includeRanges {
			ps.Ranges = ranges
		}
		if bs, ok := byName[PeerName(shard)]; ok && shard != c.self {
			b := bs
			ps.Breaker = &b
		}
		st.PeerList = append(st.PeerList, ps)
	}
	return st
}

// AnyPeerOpen reports whether any per-peer breaker currently rejects calls
// (the /healthz signal that a peer is burning).
func (c *Coordinator) AnyPeerOpen() bool { return c.breakers.AnyOpen() }

// ReachBytes sums the cumulative reach-op wire bytes moved by every peer
// client this coordinator has dialed, both directions. The scatter-bytes
// bench diffs it around a traversal batch to price the frontier traffic of
// one engine against another's.
func (c *Coordinator) ReachBytes() (sent, received uint64) {
	c.cmu.Lock()
	defer c.cmu.Unlock()
	for _, cl := range c.clients {
		s, r := cl.ReachBytes()
		sent += s
		received += r
	}
	return sent, received
}
