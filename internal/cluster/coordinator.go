package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/resilience"
	"quepa/internal/telemetry"
	"quepa/internal/wire"
)

// Scatter-gather telemetry: fan-out volume, merge traffic and the failure
// modes a burning peer produces.
var (
	scatterCalls = telemetry.NewCounter("quepa_cluster_scatter_total",
		"frontier-expansion calls fanned out by cluster coordinators (local and remote)")
	scatterKeys = telemetry.NewCounter("quepa_cluster_scatter_keys_total",
		"frontier keys shipped in scatter-gather expansions")
	scatterErrors = telemetry.NewCounter("quepa_cluster_scatter_errors_total",
		"scatter legs that failed (transport or remote error, breaker rejections excluded)")
	peerOpenRejects = telemetry.NewCounter("quepa_cluster_peer_open_total",
		"scatter legs rejected fast by an open per-peer circuit breaker")
	remoteFetches = telemetry.NewCounter("quepa_cluster_remote_fetch_total",
		"keyed fetches routed to a remote peer by ring ownership")
	rebalanceTotal = telemetry.NewCounter("quepa_cluster_rebalance_total",
		"topology swaps applied by SetTopology")
)

// Config assembles a Coordinator. Ring, Peers and Self are required; every
// peer of a deployment must construct the identical Ring (same peer count,
// vnodes and seed — Version() fingerprints the agreement).
type Config struct {
	// Ring is the partition of key space this coordinator routes by.
	Ring *Ring
	// Peers holds one wire address per shard, indexed by shard ID.
	Peers []string
	// Self is this peer's shard ID.
	Self int
	// Node is the local shard service, consulted directly (no wire hop) for
	// self-owned work unless LoopbackSelf is set.
	Node *Node
	// LoopbackSelf routes self-owned work through the wire client too, so
	// every shard pays the same simulated network cost — the node-count
	// scaling benchmarks and the netsim chaos suite set it; production
	// deployments leave it false.
	LoopbackSelf bool
	// Breaker configures the per-peer circuit breakers.
	Breaker resilience.BreakerConfig
	// Client configures the pooled wire client dialed to each peer.
	Client wire.ClientConfig
}

// Coordinator owns this peer's view of the cluster: the ring, one pooled
// multiplexed wire client per remote peer, and one circuit breaker per peer.
// It implements augment.Reacher — scatter-gather reachability — and backs
// the RoutedStore fetch path. A peer whose breaker is open costs one fast
// rejection and a "peer-open" degradation, never a failed query.
type Coordinator struct {
	mu    sync.RWMutex // guards ring+peers (swapped by SetTopology)
	ring  *Ring
	peers []string

	self     int
	node     *Node
	loopback bool
	breakers *resilience.Set
	ccfg     wire.ClientConfig

	cmu     sync.Mutex
	clients map[string]*wire.Client // lazily dialed, keyed by address
}

// NewCoordinator validates the topology and builds a coordinator. Clients
// are dialed lazily on first use, so construction succeeds before the other
// peers are up.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Ring == nil {
		return nil, errors.New("cluster: coordinator needs a ring")
	}
	if len(cfg.Peers) != cfg.Ring.Peers() {
		return nil, fmt.Errorf("cluster: ring of %d peers but %d addresses", cfg.Ring.Peers(), len(cfg.Peers))
	}
	if cfg.Self < 0 || cfg.Self >= cfg.Ring.Peers() {
		return nil, fmt.Errorf("cluster: shard id %d outside ring of %d peers", cfg.Self, cfg.Ring.Peers())
	}
	if cfg.Node == nil && !cfg.LoopbackSelf {
		return nil, errors.New("cluster: coordinator needs a local node (or LoopbackSelf)")
	}
	return &Coordinator{
		ring:     cfg.Ring,
		peers:    append([]string(nil), cfg.Peers...),
		self:     cfg.Self,
		node:     cfg.Node,
		loopback: cfg.LoopbackSelf,
		breakers: resilience.NewSet(cfg.Breaker),
		ccfg:     cfg.Client,
		clients:  map[string]*wire.Client{},
	}, nil
}

// Self returns this peer's shard ID.
func (c *Coordinator) Self() int { return c.self }

// Ring returns the current ring.
func (c *Coordinator) Ring() *Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring
}

// SetTopology swaps the ring and peer list atomically — the coordinator
// half of a rebalance. Existing wire clients to surviving addresses are
// kept; clients to departed peers are closed.
func (c *Coordinator) SetTopology(ring *Ring, peers []string) error {
	if ring == nil || len(peers) != ring.Peers() {
		return fmt.Errorf("cluster: topology of %d peers with %d addresses", ring.Peers(), len(peers))
	}
	keep := map[string]bool{}
	for _, a := range peers {
		keep[a] = true
	}
	c.mu.Lock()
	c.ring = ring
	c.peers = append([]string(nil), peers...)
	c.mu.Unlock()
	c.cmu.Lock()
	var drop []*wire.Client
	for addr, cl := range c.clients {
		if !keep[addr] {
			drop = append(drop, cl)
			delete(c.clients, addr)
		}
	}
	c.cmu.Unlock()
	for _, cl := range drop {
		cl.Close()
	}
	rebalanceTotal.Inc()
	return nil
}

// Close tears down every dialed peer client.
func (c *Coordinator) Close() {
	c.cmu.Lock()
	clients := make([]*wire.Client, 0, len(c.clients))
	for addr, cl := range c.clients {
		clients = append(clients, cl)
		delete(c.clients, addr)
	}
	c.cmu.Unlock()
	for _, cl := range clients {
		cl.Close()
	}
}

// topo snapshots the routing state one operation works off.
func (c *Coordinator) topo() (*Ring, []string) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring, c.peers
}

// client returns the pooled wire client for addr, dialing on first use.
func (c *Coordinator) client(addr string) (*wire.Client, error) {
	c.cmu.Lock()
	if cl, ok := c.clients[addr]; ok {
		c.cmu.Unlock()
		return cl, nil
	}
	c.cmu.Unlock()
	cl, err := wire.DialConfig(addr, c.ccfg)
	if err != nil {
		return nil, err
	}
	c.cmu.Lock()
	if old, ok := c.clients[addr]; ok {
		c.cmu.Unlock()
		cl.Close()
		return old, nil
	}
	c.clients[addr] = cl
	c.cmu.Unlock()
	return cl, nil
}

// peerReason classifies a failed scatter leg for the degraded section.
func peerReason(err error) string {
	var ne net.Error
	switch {
	case errors.Is(err, resilience.ErrPeerOpen), errors.Is(err, resilience.ErrOpen):
		return "peer-open"
	case errors.Is(err, context.DeadlineExceeded), errors.As(err, &ne) && ne.Timeout():
		return "peer-timeout"
	default:
		return "peer-error: " + err.Error()
	}
}

// shardGroup is one shard's slice of a frontier, keys sorted for
// deterministic frames.
type shardGroup struct {
	shard int
	keys  []string
	probs []float64
}

// groupFrontier partitions a weighted frontier by ring ownership, keys
// sorted within each group and groups sorted by shard.
func groupFrontier(ring *Ring, frontier map[core.GlobalKey]float64) []shardGroup {
	byShard := map[int][]core.GlobalKey{}
	for k := range frontier {
		s := ring.Owner(k)
		byShard[s] = append(byShard[s], k)
	}
	out := make([]shardGroup, 0, len(byShard))
	for s, keys := range byShard {
		sort.Slice(keys, func(i, j int) bool { return keys[i].Compare(keys[j]) < 0 })
		g := shardGroup{shard: s, keys: make([]string, len(keys)), probs: make([]float64, len(keys))}
		for i, k := range keys {
			g.keys[i] = k.String()
			g.probs[i] = frontier[k]
		}
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].shard < out[j].shard })
	return out
}

// scatterResult is one shard's contribution to a hop.
type scatterResult struct {
	shard int
	hits  []wire.RemoteHit
	info  wire.ReachInfo
	wall  time.Duration // measured only for profiled queries
	err   error
}

// expandShard runs one scatter leg: the local node directly for self-owned
// groups (unless loopback is forced), the peer's wire client — guarded by
// its breaker — otherwise. Each remote leg runs under a cluster.scatter
// span tagged with the shard, continuing the caller's trace over the wire.
func (c *Coordinator) expandShard(ctx context.Context, peers []string, g shardGroup) (res scatterResult) {
	scatterCalls.Inc()
	scatterKeys.Add(uint64(len(g.keys)))
	res.shard = g.shard
	var start time.Time
	if explain.FromContext(ctx) != nil {
		start = time.Now()
		defer func() { res.wall = time.Since(start) }()
	}
	if g.shard == c.self && !c.loopback {
		res.hits, res.info, res.err = c.node.ExpandFrontier(ctx, g.keys, g.probs)
		return res
	}
	sctx := ctx
	var sp *telemetry.Span
	if telemetry.SpanFromContext(ctx) != nil {
		sctx, sp = telemetry.StartSpan(ctx, "cluster.scatter")
		sp.SetAttr("shard", strconv.Itoa(g.shard))
		sp.SetAttr("peer", peers[g.shard])
		sp.SetAttr("keys", strconv.Itoa(len(g.keys)))
	}
	res.err = func() error {
		b := c.breakers.Breaker(PeerName(g.shard))
		if err := b.Allow(); err != nil {
			peerOpenRejects.Inc()
			return fmt.Errorf("cluster: %s: %w", PeerName(g.shard), resilience.ErrPeerOpen)
		}
		cl, err := c.client(peers[g.shard])
		if err != nil {
			b.Record(err)
			return err
		}
		res.hits, res.info, err = cl.ExpandFrontier(sctx, g.keys, g.probs)
		b.Record(err)
		return err
	}()
	if sp != nil {
		if res.err != nil {
			sp.Mark(telemetry.FlagError)
			sp.SetAttr("error", res.err.Error())
		} else {
			sp.SetAttr("hits", strconv.Itoa(len(res.hits)))
		}
		sp.End()
	}
	if res.err != nil && !errors.Is(res.err, resilience.ErrPeerOpen) {
		scatterErrors.Inc()
	}
	return res
}

// ReachScatter is the distributed α of Definition 2: a hop-synchronous
// weighted-frontier traversal where each hop groups the frontier by owning
// shard, expands every group in parallel (locally or over the wire) and
// merges the candidates exactly as the single-node reference traversal
// does — so with every peer healthy the hits, probabilities, distances and
// even traversal stats equal aindex.Index.Reach over the unsharded index.
// A shard that fails mid-traversal is dropped from the remaining hops and
// reported as a Degradation instead of failing the query.
//
// ReachScatter implements augment.Reacher.
func (c *Coordinator) ReachScatter(ctx context.Context, origin core.GlobalKey, level int) ([]aindex.Hit, aindex.ReachStats, []augment.Degradation) {
	ring, peers := c.topo()
	rec := explain.FromContext(ctx)
	var stats aindex.ReachStats
	maxHops := level + 1
	best := map[core.GlobalKey]aindex.Hit{origin: {Key: origin, Prob: 1, Dist: 0}}
	frontier := map[core.GlobalKey]float64{origin: 1}
	degraded := map[int]augment.Degradation{}
	for hop := 1; hop <= maxHops && len(frontier) > 0; hop++ {
		groups := groupFrontier(ring, frontier)
		// A shard already dropped this traversal is skipped for the rest of
		// it: its sub-frontier is lost, the healthy shards keep going.
		live := groups[:0]
		for _, g := range groups {
			if _, dead := degraded[g.shard]; !dead {
				live = append(live, g)
			}
		}
		results := make([]scatterResult, len(live))
		if len(live) == 1 {
			results[0] = c.expandShard(ctx, peers, live[0])
		} else {
			var wg sync.WaitGroup
			for i, g := range live {
				wg.Add(1)
				go func(i int, g shardGroup) {
					defer wg.Done()
					results[i] = c.expandShard(ctx, peers, g)
				}(i, g)
			}
			wg.Wait()
		}
		next := map[core.GlobalKey]float64{}
		for i, res := range results {
			if rec != nil {
				rec.ShardScatter(res.shard, PeerName(res.shard), len(live[i].keys), len(res.hits), res.wall, res.err != nil)
			}
			if res.err != nil {
				if _, seen := degraded[res.shard]; !seen {
					degraded[res.shard] = augment.Degradation{
						Store:  PeerName(res.shard),
						Reason: peerReason(res.err),
						Level:  level,
					}
				}
				continue
			}
			stats.Nodes += res.info.Nodes
			stats.Edges += res.info.Edges
			for _, h := range res.hits {
				gk, err := core.ParseGlobalKey(h.Key)
				if err != nil {
					continue // a peer speaking garbage cannot poison the merge
				}
				old, seen := best[gk]
				if !seen || h.Prob > old.Prob {
					dist := hop
					if seen && old.Dist < hop {
						dist = old.Dist
					}
					best[gk] = aindex.Hit{Key: gk, Prob: h.Prob, Dist: dist}
					if h.Prob > next[gk] {
						next[gk] = h.Prob
					}
				}
			}
		}
		frontier = next
	}
	out := make([]aindex.Hit, 0, len(best)-1)
	for k, h := range best {
		if k == origin {
			continue
		}
		out = append(out, h)
	}
	aindex.SortHits(out)
	degs := make([]augment.Degradation, 0, len(degraded))
	for _, d := range degraded {
		degs = append(degs, d)
	}
	sort.Slice(degs, func(i, j int) bool { return degs[i].Store < degs[j].Store })
	return out, stats, degs
}

// PeerGet fetches one remote-owned key from the peer owning shard, guarded
// by its breaker. Failures come back wrapped so the augmenter's degradation
// machinery classifies an open breaker as "peer-open".
func (c *Coordinator) PeerGet(ctx context.Context, shard int, database, collection, key string) (core.Object, error) {
	_, peers := c.topo()
	b := c.breakers.Breaker(PeerName(shard))
	if err := b.Allow(); err != nil {
		peerOpenRejects.Inc()
		return core.Object{}, fmt.Errorf("cluster: %s: %w", PeerName(shard), resilience.ErrPeerOpen)
	}
	cl, err := c.client(peers[shard])
	if err != nil {
		b.Record(err)
		return core.Object{}, err
	}
	remoteFetches.Inc()
	o, err := cl.GetDB(ctx, database, collection, key)
	b.Record(err)
	return o, err
}

// PeerGetBatch fetches a batch of remote-owned keys from one peer.
func (c *Coordinator) PeerGetBatch(ctx context.Context, shard int, database, collection string, keys []string) ([]core.Object, error) {
	_, peers := c.topo()
	b := c.breakers.Breaker(PeerName(shard))
	if err := b.Allow(); err != nil {
		peerOpenRejects.Inc()
		return nil, fmt.Errorf("cluster: %s: %w", PeerName(shard), resilience.ErrPeerOpen)
	}
	cl, err := c.client(peers[shard])
	if err != nil {
		b.Record(err)
		return nil, err
	}
	remoteFetches.Inc()
	objs, err := cl.GetBatchDB(ctx, database, collection, keys)
	b.Record(err)
	return objs, err
}

// FetchPeerSnapshot downloads the epoch-stamped A' shard checkpoint of one
// peer — the transfer leg of bootstrap and rebalance.
func (c *Coordinator) FetchPeerSnapshot(ctx context.Context, shard int) ([]byte, uint64, error) {
	_, peers := c.topo()
	cl, err := c.client(peers[shard])
	if err != nil {
		return nil, 0, err
	}
	return cl.FetchSnapshot(ctx)
}

// PeerStatus is one peer's row in the cluster section of /healthz and
// /stats.
type PeerStatus struct {
	Shard int    `json:"shard"`
	Addr  string `json:"addr"`
	Self  bool   `json:"self,omitempty"`
	// Breaker is the coordinator's circuit view of the peer; absent for
	// self (a peer does not guard itself) and for peers never yet called.
	Breaker *resilience.BreakerStatus `json:"breaker,omitempty"`
	// OwnedRanges counts the hash-space arcs the peer owns; Ranges carries
	// them when the caller asked for detail (/stats does, /healthz doesn't).
	OwnedRanges int     `json:"owned_ranges"`
	Ranges      []Range `json:"ranges,omitempty"`
}

// Status is the cluster section of /healthz and /stats: ring identity plus
// one row per peer.
type Status struct {
	RingVersion uint64       `json:"ring_version"`
	Peers       int          `json:"peers"`
	Vnodes      int          `json:"vnodes"`
	Self        int          `json:"self"`
	PeerList    []PeerStatus `json:"peer_list"`
}

// Status snapshots the cluster for the status pages. includeRanges attaches
// every peer's owned hash arcs (verbose; /stats wants it, /healthz doesn't).
func (c *Coordinator) Status(includeRanges bool) Status {
	ring, peers := c.topo()
	byName := map[string]resilience.BreakerStatus{}
	for _, bs := range c.breakers.Snapshot() {
		byName[bs.Store] = bs
	}
	st := Status{
		RingVersion: ring.Version(),
		Peers:       ring.Peers(),
		Vnodes:      ring.Vnodes(),
		Self:        c.self,
	}
	for shard, addr := range peers {
		ranges := ring.Ranges(shard)
		ps := PeerStatus{Shard: shard, Addr: addr, Self: shard == c.self, OwnedRanges: len(ranges)}
		if includeRanges {
			ps.Ranges = ranges
		}
		if bs, ok := byName[PeerName(shard)]; ok && shard != c.self {
			b := bs
			ps.Breaker = &b
		}
		st.PeerList = append(st.PeerList, ps)
	}
	return st
}

// AnyPeerOpen reports whether any per-peer breaker currently rejects calls
// (the /healthz signal that a peer is burning).
func (c *Coordinator) AnyPeerOpen() bool { return c.breakers.AnyOpen() }
