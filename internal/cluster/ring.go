// Package cluster distributes QUEPA across quepa-server peers: a consistent-
// hash ring partitions the core.GlobalKey space into shards, each peer owns
// its shard of the A' index plus the locally-owned slice of every store, and
// augmentation becomes scatter-gather — the coordinator groups each reach
// frontier by owning shard, fans the groups out over multiplexed wire
// clients, and merges the hits deterministically. The paper's single-process
// augmenter (Fig. 2) is the degenerate one-peer ring; every distributed
// answer is required (and tested) to equal the single-node one.
//
// Failure follows the repo's degradation philosophy: a peer whose circuit
// breaker is open costs one fast rejection and a "peer-open" entry in the
// answer's degraded section, never a failed query.
package cluster

import (
	"fmt"
	"sort"

	"quepa/internal/core"
)

// DefaultVnodes is the virtual-node count per peer when a topology does not
// choose one. 64 points per peer keeps the ownership imbalance of small
// rings within a few percent while Owner stays one binary search.
const DefaultVnodes = 64

// DefaultSeed is the ring hash seed shared by every peer of a deployment.
// All peers must agree on (peers, vnodes, seed) or they would route the same
// key to different owners; Version() fingerprints the agreement.
const DefaultSeed = 0x9e3779b97f4a7c15

// point is one virtual node on the ring: a position in hash space and the
// shard that owns the arc ending at it.
type point struct {
	hash  uint64
	shard int
}

// Ring is an immutable consistent-hash partition of the GlobalKey space
// across peers 0..Peers()-1. Construction is deterministic: every peer that
// builds a ring from the same (peers, vnodes, seed) gets the identical
// partition, so there is no membership protocol to agree on — only the
// topology flags. Rebalances build a new Ring and swap it atomically.
type Ring struct {
	peers  int
	vnodes int
	seed   uint64
	points []point // sorted by hash
}

// NewRing builds the ring for a topology of n peers. vnodes <= 0 selects
// DefaultVnodes; seed 0 selects DefaultSeed.
func NewRing(n, vnodes int, seed uint64) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one peer, got %d", n)
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	if seed == 0 {
		seed = DefaultSeed
	}
	r := &Ring{peers: n, vnodes: vnodes, seed: seed}
	r.points = make([]point, 0, n*vnodes)
	for shard := 0; shard < n; shard++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{hash: vnodeHash(seed, shard, v), shard: shard})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A hash collision between two peers' vnodes is resolved by shard
		// order, identically on every peer.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Peers returns the number of shards the ring partitions keys across.
func (r *Ring) Peers() int { return r.peers }

// Vnodes returns the virtual-node count per peer.
func (r *Ring) Vnodes() int { return r.vnodes }

// Seed returns the hash seed.
func (r *Ring) Seed() uint64 { return r.seed }

// Owner returns the shard owning gk: the shard of the first virtual node at
// or after the key's hash, wrapping past the top of the hash space.
func (r *Ring) Owner(gk core.GlobalKey) int {
	return r.OwnerString(gk.String())
}

// OwnerString is Owner over a raw "db.coll.key" string (the wire form).
func (r *Ring) OwnerString(key string) int {
	h := keyHash(r.seed, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: keys past the last vnode belong to the first
	}
	return r.points[i].shard
}

// Version fingerprints the topology: two peers with equal versions route
// every key identically. It hashes every ring point, so it changes whenever
// peers, vnodes or seed do.
func (r *Ring) Version() uint64 {
	v := mix64(r.seed ^ uint64(r.peers)<<32 ^ uint64(r.vnodes))
	for _, p := range r.points {
		v = mix64(v ^ p.hash ^ uint64(p.shard))
	}
	return v
}

// Range is one arc of hash space [From, To] owned by a shard. To < From
// marks the wrapping arc across the top of the space.
type Range struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// Ranges returns the arcs of hash space shard owns: for each of its virtual
// nodes, the arc from the predecessor point (exclusive, +1) to the node
// (inclusive). The union over all shards tiles the full 64-bit space.
func (r *Ring) Ranges(shard int) []Range {
	var out []Range
	for i, p := range r.points {
		if p.shard != shard {
			continue
		}
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		out = append(out, Range{From: prev + 1, To: p.hash})
	}
	return out
}

// KeyHash exposes the ring's key-hash so tests can check Ranges against
// Owner directly.
func (r *Ring) KeyHash(key string) uint64 { return keyHash(r.seed, key) }

// vnodeHash positions one virtual node. Peers and vnodes are hashed through
// two rounds of splitmix64 finalization so adding peer n never moves the
// points of peers 0..n-1 — the structural property behind the ≤1/N remap
// guarantee.
func vnodeHash(seed uint64, shard, v int) uint64 {
	return mix64(mix64(seed+uint64(shard)*0x9e3779b97f4a7c15) + uint64(v)*0xbf58476d1ce4e5b9)
}

// keyHash maps a key string into ring space: FNV-1a over the bytes, then a
// splitmix64 finalizer to spread the low-entropy tail FNV leaves on short
// keys. Stateless and allocation-free, like netsim's fault draws.
func keyHash(seed uint64, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ seed
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return mix64(h)
}

// mix64 is the splitmix64 finalizer (the same mixer netsim and the
// resilience jitter build on).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
