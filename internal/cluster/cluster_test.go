package cluster

import (
	"context"
	"net"
	"reflect"
	"strings"
	"testing"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/explain"
	"quepa/internal/netsim"
	"quepa/internal/rcache"
	"quepa/internal/resilience"
	"quepa/internal/wire"
	"quepa/internal/workload"
)

// clusterSpec is a small deterministic workload; every peer builds the same
// one, which is exactly the deployment model: replicated stores, partitioned
// A' ownership.
func clusterSpec() workload.Spec {
	s := workload.DefaultSpec()
	s.Artists = 30
	s.Customers = 60
	return s
}

// testClientConfig keeps chaos tests fast: one attempt, tight deadline.
func testClientConfig() wire.ClientConfig {
	return wire.ClientConfig{Retry: resilience.RetryPolicy{
		MaxAttempts:    1,
		AttemptTimeout: 2 * time.Second,
	}}
}

// testCluster is an in-process multi-peer deployment: every peer serves its
// shard node over a real wire listener, and a coordinator on shard 0 routes
// across them.
type testCluster struct {
	ring  *Ring
	ref   *workload.Built // peer 0's build doubles as the single-node reference
	nodes []*Node
	addrs []string
	srvs  []*wire.Server
	coord *Coordinator
}

// startCluster brings up n peers. Peers beyond the first may be wrapped by
// the caller before serving via the wrap hook (chaos tests inject faults
// there); a nil wrap serves nodes bare.
func startCluster(t *testing.T, n int, wrap func(shard int, node *Node) core.Store) *testCluster {
	t.Helper()
	ring, err := NewRing(n, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testCluster{ring: ring}
	for shard := 0; shard < n; shard++ {
		built, err := workload.Build(clusterSpec(), workload.Colocated())
		if err != nil {
			t.Fatal(err)
		}
		if shard == 0 {
			tc.ref = built
		}
		idx, err := BuildShard(built.Index, ring, shard)
		if err != nil {
			t.Fatal(err)
		}
		node := NewNode(shard, idx, built.Poly)
		tc.nodes = append(tc.nodes, node)
		var served core.Store = node
		if wrap != nil {
			if w := wrap(shard, node); w != nil {
				served = w
			}
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := wire.ServeOn(served, ln)
		t.Cleanup(func() { srv.Close() })
		tc.srvs = append(tc.srvs, srv)
		tc.addrs = append(tc.addrs, srv.Addr())
	}
	tc.coord, err = NewCoordinator(Config{
		Ring:    ring,
		Peers:   tc.addrs,
		Self:    0,
		Node:    tc.nodes[0],
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		Client:  testClientConfig(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.coord.Close)
	return tc
}

// newCoordinator builds an extra coordinator over the same topology — the
// engine and cache variants the equivalence tests compare against each
// other.
func (tc *testCluster) newCoordinator(t *testing.T, mod func(*Config)) *Coordinator {
	t.Helper()
	cfg := Config{
		Ring:    tc.ring,
		Peers:   tc.addrs,
		Self:    0,
		Node:    tc.nodes[0],
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		Client:  testClientConfig(),
	}
	if mod != nil {
		mod(&cfg)
	}
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord
}

// sampleOrigins picks deterministic traversal starting points from the
// asserted p-relations.
func sampleOrigins(b *workload.Built, n int) []core.GlobalKey {
	seen := map[core.GlobalKey]bool{}
	var out []core.GlobalKey
	for _, r := range b.Relations() {
		for _, gk := range []core.GlobalKey{r.From, r.To} {
			if len(out) >= n {
				return out
			}
			if !seen[gk] {
				seen[gk] = true
				out = append(out, gk)
			}
		}
	}
	return out
}

// TestClusterReachEquivalence: the tentpole invariant — scatter-gather
// reachability over 1, 2 and 3 wire-served peers returns exactly the hits,
// probabilities and distances of the single-node reference index, with no
// degradations, under every engine: the hop-synchronous scatter (which also
// pins traversal stats — its hop barrier makes them deterministic), the
// pipelined delta scatter, and the pipelined scatter behind a warm result
// cache.
func TestClusterReachEquivalence(t *testing.T) {
	for _, peers := range []int{1, 2, 3} {
		tc := startCluster(t, peers, nil)
		hopSync := tc.newCoordinator(t, func(c *Config) { c.HopSync = true })
		rc := rcache.New(1024)
		cached := tc.newCoordinator(t, func(c *Config) { c.Rcache = rc })
		ctx := context.Background()
		check := func(name string, got []aindex.Hit, degs []augment.Degradation, origin core.GlobalKey, level int, want []aindex.Hit) {
			t.Helper()
			if len(degs) != 0 {
				t.Fatalf("%s, %d peers, %v level %d: degradations %v", name, peers, origin, level, degs)
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s, %d peers, %v level %d:\n got %v\nwant %v", name, peers, origin, level, got, want)
			}
		}
		for _, origin := range sampleOrigins(tc.ref, 20) {
			for level := 0; level <= 2; level++ {
				want, wantStats := tc.ref.Index.ReachWithStats(origin, level)
				if len(want) == 0 {
					want = nil
				}
				got, gotStats, degs := hopSync.ReachScatter(ctx, origin, level)
				check("hop-sync", got, degs, origin, level, want)
				if gotStats.Nodes != wantStats.Nodes || gotStats.Edges != wantStats.Edges {
					t.Fatalf("%d peers, %v level %d: stats %d/%d, want %d/%d",
						peers, origin, level, gotStats.Nodes, gotStats.Edges, wantStats.Nodes, wantStats.Edges)
				}
				got, _, degs = tc.coord.ReachScatter(ctx, origin, level)
				check("pipelined", got, degs, origin, level, want)
				// First call fills the cache, second must serve from it —
				// both bitwise-equal to the reference.
				got, _, degs = cached.ReachScatter(ctx, origin, level)
				check("cache-fill", got, degs, origin, level, want)
				got, _, degs = cached.ReachScatter(ctx, origin, level)
				check("cache-hit", got, degs, origin, level, want)
			}
		}
		if st := rc.Stats(); st.Hits == 0 {
			t.Fatalf("%d peers: result cache never hit: %+v", peers, st)
		}
	}
}

// TestScatterCacheInvalidatesOnLocalMutation: a local index mutation bumps
// the epoch, so every cached scatter result stops being served — observed
// through the epoch-mismatch counter — and post-mutation answers still match
// the reference. The inserted relation joins two brand-new keys unreachable
// from any sampled origin, so the expected answers are unchanged while the
// epoch moves.
func TestScatterCacheInvalidatesOnLocalMutation(t *testing.T) {
	tc := startCluster(t, 2, nil)
	rc := rcache.New(1024)
	tc.coord.SetResultCache(rc)
	ctx := context.Background()
	origins := sampleOrigins(tc.ref, 10)
	for _, origin := range origins {
		tc.coord.ReachScatter(ctx, origin, 2)
	}
	if rc.Len() == 0 {
		t.Fatal("warmup stored nothing")
	}
	pad := core.NewIdentity(core.MustParseGlobalKey("zzz.pad.a"), core.MustParseGlobalKey("zzz.pad.b"), 0.5)
	if err := tc.nodes[0].Index().InsertRaw(pad); err != nil {
		t.Fatal(err)
	}
	before := rc.Stats().EpochMismatches
	for _, origin := range origins {
		want := tc.ref.Index.Reach(origin, 2)
		if len(want) == 0 {
			want = nil
		}
		got, _, degs := tc.coord.ReachScatter(ctx, origin, 2)
		if len(degs) != 0 {
			t.Fatalf("%v: degradations %v", origin, degs)
		}
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: post-mutation result diverges from reference", origin)
		}
	}
	if after := rc.Stats().EpochMismatches; after <= before {
		t.Fatalf("no epoch mismatches recorded after mutation (before %d, after %d)", before, after)
	}
}

// TestMixedCodecClusterScatter: the mixed-version interop acceptance test —
// a 3-peer cluster spanning all three wire generations: one peer pinned to
// the JSON-only v1 codec, one to the generic binary v2 layout (a peer that
// predates the compact reach frames), and one on the full v3 codec, as in a
// rolling deploy caught mid-flight. Negotiation must settle per peer, and
// every scatter answer must stay bitwise-equal to the single-node reference
// index, hits and traversal stats alike.
func TestMixedCodecClusterScatter(t *testing.T) {
	const legacy = 1
	const v2peer = 2
	tc := startCluster(t, 3, nil)
	tc.srvs[legacy].LimitCodec(1) // before the coordinators' lazy dials
	tc.srvs[v2peer].LimitCodec(2)
	hopSync := tc.newCoordinator(t, func(c *Config) { c.HopSync = true })
	rc := rcache.New(1024)
	cached := tc.newCoordinator(t, func(c *Config) { c.Rcache = rc })
	ctx := context.Background()
	for _, origin := range sampleOrigins(tc.ref, 20) {
		for level := 0; level <= 2; level++ {
			want, wantStats := tc.ref.Index.ReachWithStats(origin, level)
			if len(want) == 0 {
				want = nil
			}
			check := func(name string, got []aindex.Hit, degs []augment.Degradation) {
				t.Helper()
				if len(degs) != 0 {
					t.Fatalf("%s %v level %d: degradations %v", name, origin, level, degs)
				}
				if len(got) == 0 {
					got = nil
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s %v level %d:\n got %v\nwant %v", name, origin, level, got, want)
				}
			}
			got, gotStats, degs := hopSync.ReachScatter(ctx, origin, level)
			check("mixed-codec hop-sync", got, degs)
			if gotStats.Nodes != wantStats.Nodes || gotStats.Edges != wantStats.Edges {
				t.Fatalf("mixed-codec %v level %d: stats %d/%d, want %d/%d",
					origin, level, gotStats.Nodes, gotStats.Edges, wantStats.Nodes, wantStats.Edges)
			}
			got, _, degs = tc.coord.ReachScatter(ctx, origin, level)
			check("mixed-codec pipelined", got, degs)
			got, _, degs = cached.ReachScatter(ctx, origin, level)
			check("mixed-codec cache-fill", got, degs)
			got, _, degs = cached.ReachScatter(ctx, origin, level)
			check("mixed-codec cache-hit", got, degs)
		}
	}
	if st := rc.Stats(); st.Hits == 0 {
		t.Fatalf("mixed-codec result cache never hit: %+v", st)
	}
	// The negotiation actually split: the legacy peer's client speaks JSON,
	// the capped binary peer still reports binary (it negotiated the v2
	// layout, not the compact frames).
	codecs := map[string]int{}
	for shard, addr := range tc.addrs {
		if shard == 0 {
			continue // self is loopback, no wire client
		}
		cli, err := tc.coord.client(addr)
		if err != nil {
			t.Fatalf("peer %d client: %v", shard, err)
		}
		codecs[cli.Codec()]++
		if shard == legacy && cli.Codec() != wire.CodecJSON {
			t.Errorf("legacy peer negotiated %q, want json", cli.Codec())
		}
		if shard == v2peer && cli.Codec() != wire.CodecBinary {
			t.Errorf("v2-capped peer negotiated %q, want binary", cli.Codec())
		}
	}
	if codecs[wire.CodecBinary] == 0 {
		t.Errorf("no peer negotiated binary: %v", codecs)
	}
}

// TestClusterRoutedStoreEquivalence: ring-routed keyed reads return exactly
// what the local store would — Get by Get and batch fan-out alike.
func TestClusterRoutedStoreEquivalence(t *testing.T) {
	tc := startCluster(t, 3, nil)
	ctx := context.Background()
	routed, err := RoutePolystore(tc.ref.Poly, tc.coord)
	if err != nil {
		t.Fatal(err)
	}
	origins := sampleOrigins(tc.ref, 40)
	remote := 0
	byColl := map[[2]string][]string{}
	for _, gk := range origins {
		direct, err1 := tc.ref.Poly.Fetch(ctx, gk)
		rst, err := routed.Database(gk.Database)
		if err != nil {
			t.Fatal(err)
		}
		got, err2 := rst.Get(ctx, gk.Collection, gk.Key)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%v: direct err %v, routed err %v", gk, err1, err2)
		}
		if err1 == nil && !reflect.DeepEqual(got, direct) {
			t.Fatalf("%v: routed object differs", gk)
		}
		if tc.ring.Owner(gk) != 0 {
			remote++
		}
		byColl[[2]string{gk.Database, gk.Collection}] = append(byColl[[2]string{gk.Database, gk.Collection}], gk.Key)
	}
	if remote == 0 {
		t.Fatal("no sampled key was remote-owned; routing untested")
	}
	for dc, keys := range byColl {
		direct, err := tc.ref.Poly.FetchBatch(ctx, dc[0], dc[1], keys)
		if err != nil {
			t.Fatal(err)
		}
		rst, _ := routed.Database(dc[0])
		got, err := rst.GetBatch(ctx, dc[1], keys)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, direct) {
			t.Fatalf("%s.%s: routed batch of %d keys differs from direct", dc[0], dc[1], len(keys))
		}
	}
}

// TestClusterPeerDownDegradesPeerOpen: a peer failing every request trips
// its circuit breaker; once open, scatter legs are rejected fast and the
// traversal reports the peer as degraded with reason "peer-open" instead of
// failing — the cluster acceptance behaviour.
func TestClusterPeerDownDegradesPeerOpen(t *testing.T) {
	const down = 2
	tc := startCluster(t, 3, func(shard int, node *Node) core.Store {
		if shard != down {
			return nil
		}
		return netsim.NewChaosNode(node, netsim.PeerProfile{},
			netsim.FaultPlan{Down: []netsim.Window{{From: 1}}}, func(time.Duration) {})
	})
	ctx := context.Background()
	origins := sampleOrigins(tc.ref, 30)
	sawOpen := false
	for _, origin := range origins {
		hits, _, degs := tc.coord.ReachScatter(ctx, origin, 2)
		for _, d := range degs {
			if d.Store != PeerName(down) {
				t.Fatalf("unexpected degraded store %+v", d)
			}
			if !strings.HasPrefix(d.Reason, "peer-") {
				t.Fatalf("degradation reason %q not peer-classified", d.Reason)
			}
			if d.Reason == "peer-open" {
				sawOpen = true
			}
		}
		_ = hits // healthy shards' results still come back; no error path exists
	}
	if !sawOpen {
		t.Fatal("breaker never opened: no peer-open degradation observed")
	}
	if !tc.coord.AnyPeerOpen() {
		t.Error("AnyPeerOpen is false with a burning peer")
	}
	st := tc.coord.Status(false)
	var found *resilience.BreakerStatus
	for _, ps := range st.PeerList {
		if ps.Shard == down {
			found = ps.Breaker
		}
	}
	if found == nil || found.State != "open" {
		t.Errorf("status does not show peer-%d open: %+v", down, found)
	}
}

// TestClusterAugmenterPeerOpen: the full search-path behaviour — an
// augmenter wired to the scatter coordinator over a cluster with one dead
// peer answers successfully and reports "peer-open" in its degradations.
func TestClusterAugmenterPeerOpen(t *testing.T) {
	const down = 1
	tc := startCluster(t, 2, func(shard int, node *Node) core.Store {
		if shard != down {
			return nil
		}
		return netsim.NewChaosNode(node, netsim.PeerProfile{},
			netsim.FaultPlan{Down: []netsim.Window{{From: 1}}}, func(time.Duration) {})
	})
	routed, err := RoutePolystore(tc.ref.Poly, tc.coord)
	if err != nil {
		t.Fatal(err)
	}
	aug := augment.New(routed, tc.nodes[0].Index(), augment.Config{})
	aug.SetReacher(tc.coord)
	ctx := context.Background()
	origins := sampleOrigins(tc.ref, 20)
	sawOpen := false
	for _, gk := range origins {
		obj, err := tc.ref.Poly.Fetch(ctx, gk)
		if err != nil {
			continue
		}
		out, degs, err := aug.AugmentObjects(ctx, []core.Object{obj}, 2)
		if err != nil {
			t.Fatalf("augmenting %v: %v", gk, err)
		}
		for _, d := range degs {
			if d.Reason == "peer-open" {
				sawOpen = true
			}
		}
		_ = out
	}
	if !sawOpen {
		t.Fatal("no peer-open degradation surfaced through the augmenter")
	}
}

// TestClusterSlowShardDegrades: a stalled peer is cut off by the client
// deadline and degrades the traversal rather than hanging it.
func TestClusterSlowShardDegrades(t *testing.T) {
	const slow = 1
	tc := startCluster(t, 2, func(shard int, node *Node) core.Store {
		if shard != slow {
			return nil
		}
		return netsim.NewChaosNode(node, netsim.PeerProfile{},
			netsim.FaultPlan{Stall: 500 * time.Millisecond, StallIn: []netsim.Window{{From: 1}}}, nil)
	})
	tc.coord.ccfg.Retry.AttemptTimeout = 100 * time.Millisecond
	ctx := context.Background()
	deadline := time.Now().Add(30 * time.Second)
	for _, origin := range sampleOrigins(tc.ref, 10) {
		if time.Now().After(deadline) {
			t.Fatal("slow-shard traversals did not degrade in time")
		}
		_, _, degs := tc.coord.ReachScatter(ctx, origin, 2)
		for _, d := range degs {
			if d.Store == PeerName(slow) && strings.HasPrefix(d.Reason, "peer-") {
				return // stalled shard degraded; query survived
			}
		}
	}
	t.Fatal("stalled peer never degraded a traversal")
}

// TestClusterSnapshotBootstrap: the snapshot wire op round-trips a shard —
// a fresh node installing a peer's epoch-stamped checkpoint answers exactly
// like the original.
func TestClusterSnapshotBootstrap(t *testing.T) {
	tc := startCluster(t, 1, nil)
	ctx := context.Background()
	data, epoch, err := tc.coord.FetchPeerSnapshot(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewNode(0, aindex.New(), tc.ref.Poly)
	got, err := fresh.InstallSnapshot(data, tc.ring)
	if err != nil {
		t.Fatal(err)
	}
	if got != epoch {
		t.Errorf("installed epoch %d, fetched %d", got, epoch)
	}
	for _, origin := range sampleOrigins(tc.ref, 10) {
		want := tc.nodes[0].Index().Reach(origin, 2)
		have := fresh.Index().Reach(origin, 2)
		if len(want) == 0 {
			want = nil
		}
		if len(have) == 0 {
			have = nil
		}
		if !reflect.DeepEqual(have, want) {
			t.Fatalf("%v: bootstrapped shard diverges from source", origin)
		}
	}
}

// TestClusterRebalanceJoin: growing a live 2-peer cluster to 3 — the joiner
// merges the members' snapshots under the new ring, the coordinator swaps
// topology, and scatter-gather answers keep matching the single-node
// reference with no degradations.
func TestClusterRebalanceJoin(t *testing.T) {
	tc := startCluster(t, 2, nil)
	ctx := context.Background()
	ring3, err := NewRing(3, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	var snaps [][]byte
	for shard := 0; shard < 2; shard++ {
		data, _, err := tc.coord.FetchPeerSnapshot(ctx, shard)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, data)
	}
	joiner := NewNode(2, aindex.New(), tc.ref.Poly)
	if err := joiner.MergeSnapshots(snaps, ring3); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.ServeOn(joiner, ln)
	t.Cleanup(func() { srv.Close() })
	oldVersion := tc.coord.Status(false).RingVersion
	if err := tc.coord.SetTopology(ring3, append(append([]string(nil), tc.addrs...), srv.Addr())); err != nil {
		t.Fatal(err)
	}
	st := tc.coord.Status(true)
	if st.RingVersion == oldVersion || st.Peers != 3 || len(st.PeerList) != 3 {
		t.Fatalf("topology swap not visible in status: %+v", st)
	}
	for _, ps := range st.PeerList {
		if ps.OwnedRanges == 0 || len(ps.Ranges) != ps.OwnedRanges {
			t.Fatalf("peer %d owns no ranges after rebalance: %+v", ps.Shard, ps)
		}
	}
	for _, origin := range sampleOrigins(tc.ref, 20) {
		for level := 0; level <= 2; level++ {
			want, _ := tc.ref.Index.ReachWithStats(origin, level)
			got, _, degs := tc.coord.ReachScatter(ctx, origin, level)
			if len(degs) != 0 {
				t.Fatalf("post-rebalance degradations: %v", degs)
			}
			if len(want) == 0 {
				want = nil
			}
			if len(got) == 0 {
				got = nil
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("post-rebalance %v level %d diverges from reference", origin, level)
			}
		}
	}
}

// TestRebalanceInvalidatesReachCache: the scatter cache keys carry the ring
// version, so a live 2→3 SetTopology rebalance orphans every warm entry —
// each post-rebalance probe lands on the old ring's fingerprint, records an
// epoch mismatch, and recomputes against the new topology instead of serving
// a stale routing. No flush call is involved; coherence is purely the key.
func TestRebalanceInvalidatesReachCache(t *testing.T) {
	tc := startCluster(t, 2, nil)
	rc := rcache.New(1024)
	tc.coord.SetResultCache(rc)
	ctx := context.Background()
	origins := sampleOrigins(tc.ref, 10)
	for _, origin := range origins {
		if _, _, degs := tc.coord.ReachScatter(ctx, origin, 2); len(degs) != 0 {
			t.Fatalf("warmup %v: degradations %v", origin, degs)
		}
	}
	if rc.Len() == 0 {
		t.Fatal("warmup stored nothing")
	}
	ring3, err := NewRing(3, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	var snaps [][]byte
	for shard := 0; shard < 2; shard++ {
		data, _, err := tc.coord.FetchPeerSnapshot(ctx, shard)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, data)
	}
	joiner := NewNode(2, aindex.New(), tc.ref.Poly)
	if err := joiner.MergeSnapshots(snaps, ring3); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := wire.ServeOn(joiner, ln)
	t.Cleanup(func() { srv.Close() })
	if err := tc.coord.SetTopology(ring3, append(append([]string(nil), tc.addrs...), srv.Addr())); err != nil {
		t.Fatal(err)
	}
	before := rc.Stats().EpochMismatches
	for _, origin := range origins {
		want := tc.ref.Index.Reach(origin, 2)
		if len(want) == 0 {
			want = nil
		}
		got, _, degs := tc.coord.ReachScatter(ctx, origin, 2)
		if len(degs) != 0 {
			t.Fatalf("post-rebalance %v: degradations %v", origin, degs)
		}
		if len(got) == 0 {
			got = nil
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("post-rebalance %v served a stale cached result", origin)
		}
	}
	if after := rc.Stats().EpochMismatches; after <= before {
		t.Fatalf("no epoch mismatches recorded across rebalance (before %d, after %d)", before, after)
	}
}

// TestClusterExplainScatter: profiled cluster searches expose the per-shard
// fan-out — one ShardFanout row per contacted shard, totals counted.
func TestClusterExplainScatter(t *testing.T) {
	tc := startCluster(t, 3, nil)
	routed, err := RoutePolystore(tc.ref.Poly, tc.coord)
	if err != nil {
		t.Fatal(err)
	}
	aug := augment.New(routed, tc.nodes[0].Index(), augment.Config{})
	aug.SetReacher(tc.coord)
	for _, gk := range sampleOrigins(tc.ref, 20) {
		obj, err := tc.ref.Poly.Fetch(context.Background(), gk)
		if err != nil {
			continue
		}
		ctx, rec := explain.WithRecorder(context.Background(), "search")
		if _, _, err := aug.AugmentObjects(ctx, []core.Object{obj}, 2); err != nil {
			t.Fatal(err)
		}
		p := rec.Finish(0)
		if len(p.Augmentations) != 1 {
			t.Fatalf("profile has %d augmentation traces", len(p.Augmentations))
		}
		sc := p.Augmentations[0].Scatter
		if len(sc) == 0 {
			continue // origin with an empty frontier beyond hop 1
		}
		if p.Totals.ScatterCalls == 0 {
			t.Fatal("scatter rows present but ScatterCalls total is zero")
		}
		for i, f := range sc {
			if f.Peer != PeerName(f.Shard) || f.Calls == 0 {
				t.Fatalf("malformed fanout row %+v", f)
			}
			if i > 0 && sc[i-1].Shard >= f.Shard {
				t.Fatalf("fanout rows not sorted by shard: %+v", sc)
			}
		}
		return // one profiled query with real fan-out is enough
	}
	t.Fatal("no sampled origin produced a scatter fan-out")
}
