package cache

import (
	"fmt"
	"sync"
	"testing"

	"quepa/internal/core"
)

// TestShardCountByCapacity: small caches stay single-shard (exact LRU order),
// production-sized caches fan out over 16 shards.
func TestShardCountByCapacity(t *testing.T) {
	if got := NewLRU(16).Shards(); got != 1 {
		t.Errorf("small cache shards = %d, want 1", got)
	}
	if got := NewLRU(shardThreshold).Shards(); got != shardCount {
		t.Errorf("large cache shards = %d, want %d", got, shardCount)
	}
	if got := NewLRU(100000).Shards(); got != shardCount {
		t.Errorf("bench-sized cache shards = %d, want %d", got, shardCount)
	}
}

// TestShardedCapacitySumsExact: the per-shard capacities sum to the
// configured total, including totals that do not divide evenly.
func TestShardedCapacitySumsExact(t *testing.T) {
	for _, capacity := range []int{shardThreshold, 1000, 4096, 100003} {
		c := NewLRU(capacity)
		sum := 0
		for i := range c.shards {
			sum += c.shards[i].capacity
		}
		if sum != capacity {
			t.Errorf("capacity %d: shard shares sum to %d", capacity, sum)
		}
		if c.Capacity() != capacity {
			t.Errorf("Capacity() = %d, want %d", c.Capacity(), capacity)
		}
	}
}

// TestShardedBasicOps: hit/miss/remove/clear semantics are unchanged when the
// cache is sharded.
func TestShardedBasicOps(t *testing.T) {
	c := NewLRU(1024)
	const n = 500
	for i := 0; i < n; i++ {
		c.Put(obj(fmt.Sprintf("k%d", i)))
	}
	if c.Len() != n {
		t.Fatalf("Len = %d, want %d", c.Len(), n)
	}
	for i := 0; i < n; i++ {
		if _, ok := c.Get(obj(fmt.Sprintf("k%d", i)).GK); !ok {
			t.Fatalf("k%d missing", i)
		}
	}
	hits, misses := c.Stats()
	if hits != n || misses != 0 {
		t.Errorf("Stats = %d hits, %d misses", hits, misses)
	}
	if !c.Remove(obj("k0").GK) || c.Remove(obj("k0").GK) {
		t.Error("Remove semantics broken under sharding")
	}
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d", c.Len())
	}
}

// TestShardedKeysSpread: the FNV-1a placement actually distributes keys
// instead of piling them on one shard.
func TestShardedKeysSpread(t *testing.T) {
	c := NewLRU(100000)
	for i := 0; i < 2000; i++ {
		c.Put(obj(fmt.Sprintf("key-%d", i)))
	}
	used := 0
	for _, s := range c.shards {
		s.mu.Lock()
		if s.ll.Len() > 0 {
			used++
		}
		s.mu.Unlock()
	}
	if used < shardCount/2 {
		t.Errorf("2000 keys landed on only %d of %d shards", used, shardCount)
	}
}

// TestShardedResize: growing and shrinking redistributes capacity and keeps
// Len within bounds; shrinking to zero empties the cache.
func TestShardedResize(t *testing.T) {
	c := NewLRU(1024)
	for i := 0; i < 1024; i++ {
		c.Put(obj(fmt.Sprintf("k%d", i)))
	}
	c.Resize(256)
	if c.Len() > 256 {
		t.Errorf("Len after shrink = %d > 256", c.Len())
	}
	if c.Capacity() != 256 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
	c.Resize(0)
	if c.Len() != 0 {
		t.Errorf("Len after Resize(0) = %d", c.Len())
	}
	if c.Shards() != shardCount {
		t.Errorf("Resize changed shard count to %d", c.Shards())
	}
}

// TestShardedConcurrentAccess hammers a sharded cache from many goroutines
// (run under -race) while resizing, and checks the capacity invariant after.
func TestShardedConcurrentAccess(t *testing.T) {
	c := NewLRU(2048)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("g%d-%d", g, i%128)
				c.Put(obj(k))
				c.Get(obj(k).GK)
				if i%100 == 0 {
					c.Resize(1024 + (g+i)%1024)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}

// BenchmarkCacheGetParallel measures the contended hit path — the reason the
// cache is sharded. Run via `make bench-hotpath`.
func BenchmarkCacheGetParallel(b *testing.B) {
	for _, capacity := range []int{64, 4096} {
		name := "single-shard"
		if capacity >= shardThreshold {
			name = "sharded"
		}
		b.Run(name, func(b *testing.B) {
			c := NewLRU(capacity)
			keys := make([]core.GlobalKey, 64)
			for i := range keys {
				o := obj(fmt.Sprintf("k%d", i))
				c.Put(o)
				keys[i] = o.GK
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					c.Get(keys[i&63])
					i++
				}
			})
		})
	}
}
