package cache

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"quepa/internal/core"
)

func obj(key string) core.Object {
	return core.NewObject(core.NewGlobalKey("db", "c", key), map[string]string{"v": key})
}

func TestPutGet(t *testing.T) {
	c := NewLRU(2)
	c.Put(obj("a"))
	got, ok := c.Get(obj("a").GK)
	if !ok || got.Fields["v"] != "a" {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	if _, ok := c.Get(obj("zz").GK); ok {
		t.Error("missing key reported cached")
	}
}

func TestEviction(t *testing.T) {
	c := NewLRU(2)
	c.Put(obj("a"))
	c.Put(obj("b"))
	c.Put(obj("c")) // evicts a
	if _, ok := c.Get(obj("a").GK); ok {
		t.Error("LRU entry not evicted")
	}
	if _, ok := c.Get(obj("b").GK); !ok {
		t.Error("recent entry evicted")
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestLRUOrderOnAccess(t *testing.T) {
	c := NewLRU(2)
	c.Put(obj("a"))
	c.Put(obj("b"))
	c.Get(obj("a").GK) // a is now most recent
	c.Put(obj("c"))    // evicts b
	if _, ok := c.Get(obj("a").GK); !ok {
		t.Error("recently accessed entry evicted")
	}
	if _, ok := c.Get(obj("b").GK); ok {
		t.Error("least recently used entry survived")
	}
}

func TestPutRefreshes(t *testing.T) {
	c := NewLRU(2)
	c.Put(obj("a"))
	updated := core.NewObject(obj("a").GK, map[string]string{"v": "new"})
	c.Put(updated)
	if c.Len() != 1 {
		t.Errorf("Len after refresh = %d", c.Len())
	}
	got, _ := c.Get(obj("a").GK)
	if got.Fields["v"] != "new" {
		t.Errorf("refreshed value = %v", got.Fields)
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := NewLRU(0)
	c.Put(obj("a"))
	if _, ok := c.Get(obj("a").GK); ok {
		t.Error("zero-capacity cache stored an object")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
	neg := NewLRU(-5)
	if neg.Capacity() != 0 {
		t.Errorf("negative capacity = %d", neg.Capacity())
	}
}

func TestResize(t *testing.T) {
	c := NewLRU(4)
	for _, k := range []string{"a", "b", "c", "d"} {
		c.Put(obj(k))
	}
	c.Resize(2)
	if c.Len() != 2 {
		t.Errorf("Len after shrink = %d", c.Len())
	}
	// The two most recent survive.
	if _, ok := c.Get(obj("d").GK); !ok {
		t.Error("most recent evicted on shrink")
	}
	if _, ok := c.Get(obj("a").GK); ok {
		t.Error("oldest survived shrink")
	}
	c.Resize(10)
	if c.Capacity() != 10 {
		t.Errorf("Capacity = %d", c.Capacity())
	}
	c.Resize(-1)
	if c.Capacity() != 0 || c.Len() != 0 {
		t.Errorf("negative resize: cap=%d len=%d", c.Capacity(), c.Len())
	}
}

func TestRemove(t *testing.T) {
	c := NewLRU(2)
	c.Put(obj("a"))
	if !c.Remove(obj("a").GK) {
		t.Error("Remove existing returned false")
	}
	if c.Remove(obj("a").GK) {
		t.Error("Remove missing returned true")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestClearAndStats(t *testing.T) {
	c := NewLRU(2)
	c.Put(obj("a"))
	c.Get(obj("a").GK)  // hit
	c.Get(obj("zz").GK) // miss
	c.Clear()
	if c.Len() != 0 {
		t.Errorf("Len after Clear = %d", c.Len())
	}
	hits, misses := c.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("Stats = %d hits, %d misses", hits, misses)
	}
}

func TestCapacityInvariant(t *testing.T) {
	// Property: after any sequence of puts, Len never exceeds capacity.
	f := func(keys []string, capRaw uint8) bool {
		capacity := int(capRaw % 8)
		c := NewLRU(capacity)
		for _, k := range keys {
			c.Put(obj(k))
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := NewLRU(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("g%d-%d", g, i%32)
				c.Put(obj(k))
				c.Get(obj(k).GK)
				if i%50 == 0 {
					c.Resize(32 + i%64)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > c.Capacity() {
		t.Errorf("Len %d exceeds capacity %d", c.Len(), c.Capacity())
	}
}
