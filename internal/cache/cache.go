// Package cache implements the memory-efficient strategy of Section IV-C:
// an LRU cache of data objects keyed by global key, standing in for the
// Ehcache instance QUEPA uses. All augmenters consult it before asking the
// polystore for an object; it pays off in augmented exploration (users
// revisit objects) and in level > 0 searches (augmented results overlap).
//
// The cache is sharded: at production capacities (>= shardThreshold) the key
// space is hashed over 16 independent LRU shards so that the worker pools of
// the concurrent strategies stop convoying on a single mutex. Small caches
// keep a single shard, which preserves exact global LRU ordering — the
// semantics every eviction property below the threshold is specified (and
// tested) against. Sharded caches are LRU per shard; the capacity bound and
// the hit/miss/eviction accounting are global either way.
package cache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

const (
	// shardCount is the number of independent LRU shards of a large cache.
	shardCount = 16
	// shardThreshold is the construction-time capacity at which a cache
	// becomes sharded. Below it a single shard keeps exact LRU order; tiny
	// per-shard capacities would make eviction near-random anyway.
	shardThreshold = 256
)

// LRU is a fixed-capacity least-recently-used object cache, safe for
// concurrent use. A capacity of zero disables caching (every Get misses,
// every Put is dropped): the cold-cache experiments rely on this.
//
// The shard count is fixed at construction from the initial capacity;
// Resize redistributes capacity across the existing shards.
type LRU struct {
	shards   []*shard
	capacity atomic.Int64 // configured total capacity
	resizeMu sync.Mutex   // serializes Resize redistributions
}

type shard struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[core.GlobalKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry struct {
	key core.GlobalKey
	obj core.Object
}

// NewLRU creates a cache holding at most capacity objects. Negative
// capacities are treated as zero.
func NewLRU(capacity int) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	n := 1
	if capacity >= shardThreshold {
		n = shardCount
	}
	c := &LRU{shards: make([]*shard, n)}
	c.capacity.Store(int64(capacity))
	for i := range c.shards {
		c.shards[i] = &shard{
			capacity: shardShare(capacity, i, n),
			ll:       list.New(),
			items:    map[core.GlobalKey]*list.Element{},
		}
	}
	return c
}

// shardShare splits a total capacity over n shards, spreading the remainder
// over the first shards so the shares sum exactly to the total.
func shardShare(capacity, i, n int) int {
	share := capacity / n
	if i < capacity%n {
		share++
	}
	return share
}

// shardFor hashes the global key over the shards (FNV-1a over the three key
// components, inlined so the hot path does not allocate).
func (c *LRU) shardFor(gk core.GlobalKey) *shard {
	if len(c.shards) == 1 {
		return c.shards[0]
	}
	h := uint32(2166136261)
	for i := 0; i < len(gk.Database); i++ {
		h = (h ^ uint32(gk.Database[i])) * 16777619
	}
	h = (h ^ '.') * 16777619
	for i := 0; i < len(gk.Collection); i++ {
		h = (h ^ uint32(gk.Collection[i])) * 16777619
	}
	h = (h ^ '.') * 16777619
	for i := 0; i < len(gk.Key); i++ {
		h = (h ^ uint32(gk.Key[i])) * 16777619
	}
	return c.shards[h%shardCount]
}

// Shards returns the number of independent LRU shards (1 or 16).
func (c *LRU) Shards() int { return len(c.shards) }

// Get returns the cached object for gk, marking it most recently used.
func (c *LRU) Get(gk core.GlobalKey) (core.Object, bool) {
	s := c.shardFor(gk)
	s.mu.Lock()
	el, ok := s.items[gk]
	if !ok {
		s.misses++
		s.mu.Unlock()
		return core.Object{}, false
	}
	s.hits++
	s.ll.MoveToFront(el)
	obj := el.Value.(*lruEntry).obj
	s.mu.Unlock()
	return obj, true
}

// Put inserts or refreshes an object, evicting the least recently used entry
// of its shard when the shard is full.
func (c *LRU) Put(obj core.Object) {
	s := c.shardFor(obj.GK)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.capacity == 0 {
		return
	}
	if el, ok := s.items[obj.GK]; ok {
		el.Value.(*lruEntry).obj = obj
		s.ll.MoveToFront(el)
		return
	}
	s.items[obj.GK] = s.ll.PushFront(&lruEntry{key: obj.GK, obj: obj})
	s.evictLocked()
}

// Remove drops an object from the cache, reporting whether it was present.
// The augmenter calls it when lazy deletion discovers a vanished object.
func (c *LRU) Remove(gk core.GlobalKey) bool {
	s := c.shardFor(gk)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[gk]
	if !ok {
		return false
	}
	s.ll.Remove(el)
	delete(s.items, gk)
	return true
}

// Resize changes the capacity, evicting LRU entries if the cache shrank.
// The adaptive optimizer adjusts CACHE_SIZE in small steps through this.
// The shard count is fixed at construction; Resize redistributes the new
// capacity over the existing shards.
func (c *LRU) Resize(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	c.resizeMu.Lock()
	defer c.resizeMu.Unlock()
	c.capacity.Store(int64(capacity))
	n := len(c.shards)
	for i, s := range c.shards {
		s.mu.Lock()
		s.capacity = shardShare(capacity, i, n)
		s.evictLocked()
		s.mu.Unlock()
	}
}

// Clear empties the cache without touching the hit/miss statistics.
func (c *LRU) Clear() {
	for _, s := range c.shards {
		s.mu.Lock()
		s.ll.Init()
		s.items = map[core.GlobalKey]*list.Element{}
		s.mu.Unlock()
	}
}

func (s *shard) evictLocked() {
	for s.ll.Len() > s.capacity {
		back := s.ll.Back()
		if back == nil {
			return
		}
		s.ll.Remove(back)
		delete(s.items, back.Value.(*lruEntry).key)
		s.evictions++
	}
}

// Len returns the number of cached objects.
func (c *LRU) Len() int {
	total := 0
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.ll.Len()
		s.mu.Unlock()
	}
	return total
}

// Capacity returns the configured capacity.
func (c *LRU) Capacity() int { return int(c.capacity.Load()) }

// Stats reports cumulative hits and misses.
func (c *LRU) Stats() (hits, misses uint64) {
	for _, s := range c.shards {
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// Evictions reports how many entries capacity pressure has pushed out.
func (c *LRU) Evictions() uint64 {
	var total uint64
	for _, s := range c.shards {
		s.mu.Lock()
		total += s.evictions
		s.mu.Unlock()
	}
	return total
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (c *LRU) HitRatio() float64 {
	hits, misses := c.Stats()
	total := hits + misses
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}

// RegisterMetrics exports the cache on a telemetry registry as
// function-backed series read at scrape time — the hot path keeps its single
// shard-mutex acquisition and pays nothing for the export. Re-registering
// (e.g. a rebuilt server) points the series at the new instance.
func (c *LRU) RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("quepa_cache_hits_total", "object cache lookups served from memory",
		func() uint64 { h, _ := c.Stats(); return h })
	r.CounterFunc("quepa_cache_misses_total", "object cache lookups that fell through to the polystore",
		func() uint64 { _, m := c.Stats(); return m })
	r.CounterFunc("quepa_cache_evictions_total", "cache entries evicted by capacity pressure",
		func() uint64 { return c.Evictions() })
	r.GaugeFunc("quepa_cache_objects", "objects currently cached",
		func() float64 { return float64(c.Len()) })
	r.GaugeFunc("quepa_cache_capacity", "configured cache capacity",
		func() float64 { return float64(c.Capacity()) })
	r.GaugeFunc("quepa_cache_hit_ratio", "hits / (hits + misses) since process start",
		func() float64 { return c.HitRatio() })
}
