// Package cache implements the memory-efficient strategy of Section IV-C:
// an LRU cache of data objects keyed by global key, standing in for the
// Ehcache instance QUEPA uses. All augmenters consult it before asking the
// polystore for an object; it pays off in augmented exploration (users
// revisit objects) and in level > 0 searches (augmented results overlap).
package cache

import (
	"container/list"
	"sync"

	"quepa/internal/core"
	"quepa/internal/telemetry"
)

// LRU is a fixed-capacity least-recently-used object cache, safe for
// concurrent use. A capacity of zero disables caching (every Get misses,
// every Put is dropped): the cold-cache experiments rely on this.
type LRU struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[core.GlobalKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type lruEntry struct {
	key core.GlobalKey
	obj core.Object
}

// NewLRU creates a cache holding at most capacity objects. Negative
// capacities are treated as zero.
func NewLRU(capacity int) *LRU {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU{
		capacity: capacity,
		ll:       list.New(),
		items:    map[core.GlobalKey]*list.Element{},
	}
}

// Get returns the cached object for gk, marking it most recently used.
func (c *LRU) Get(gk core.GlobalKey) (core.Object, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[gk]
	if !ok {
		c.misses++
		return core.Object{}, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).obj, true
}

// Put inserts or refreshes an object, evicting the least recently used entry
// when the cache is full.
func (c *LRU) Put(obj core.Object) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity == 0 {
		return
	}
	if el, ok := c.items[obj.GK]; ok {
		el.Value.(*lruEntry).obj = obj
		c.ll.MoveToFront(el)
		return
	}
	c.items[obj.GK] = c.ll.PushFront(&lruEntry{key: obj.GK, obj: obj})
	c.evictLocked()
}

// Remove drops an object from the cache, reporting whether it was present.
// The augmenter calls it when lazy deletion discovers a vanished object.
func (c *LRU) Remove(gk core.GlobalKey) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[gk]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, gk)
	return true
}

// Resize changes the capacity, evicting LRU entries if the cache shrank.
// The adaptive optimizer adjusts CACHE_SIZE in small steps through this.
func (c *LRU) Resize(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = capacity
	c.evictLocked()
}

// Clear empties the cache without touching the hit/miss statistics.
func (c *LRU) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = map[core.GlobalKey]*list.Element{}
}

func (c *LRU) evictLocked() {
	for c.ll.Len() > c.capacity {
		back := c.ll.Back()
		if back == nil {
			return
		}
		c.ll.Remove(back)
		delete(c.items, back.Value.(*lruEntry).key)
		c.evictions++
	}
}

// Len returns the number of cached objects.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Capacity returns the configured capacity.
func (c *LRU) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.capacity
}

// Stats reports cumulative hits and misses.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Evictions reports how many entries capacity pressure has pushed out.
func (c *LRU) Evictions() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.evictions
}

// HitRatio returns hits/(hits+misses), or 0 before any lookup.
func (c *LRU) HitRatio() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// RegisterMetrics exports the cache on a telemetry registry as
// function-backed series read at scrape time — the hot path keeps its single
// mutex acquisition and pays nothing for the export. Re-registering (e.g. a
// rebuilt server) points the series at the new instance.
func (c *LRU) RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("quepa_cache_hits_total", "object cache lookups served from memory",
		func() uint64 { h, _ := c.Stats(); return h })
	r.CounterFunc("quepa_cache_misses_total", "object cache lookups that fell through to the polystore",
		func() uint64 { _, m := c.Stats(); return m })
	r.CounterFunc("quepa_cache_evictions_total", "cache entries evicted by capacity pressure",
		func() uint64 { return c.Evictions() })
	r.GaugeFunc("quepa_cache_objects", "objects currently cached",
		func() float64 { return float64(c.Len()) })
	r.GaugeFunc("quepa_cache_capacity", "configured cache capacity",
		func() float64 { return float64(c.Capacity()) })
	r.GaugeFunc("quepa_cache_hit_ratio", "hits / (hits + misses) since process start",
		func() float64 { return c.HitRatio() })
}
