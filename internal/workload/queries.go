package workload

import (
	"fmt"
	"strings"

	"quepa/internal/core"
)

// This file forms the test-bed queries of Section VII-A(b): for each
// database, queries retrieving an exact number of objects, built on the
// "seq" field every generated object carries.

// Query returns a native-language query against the named database whose
// result contains exactly size objects (capped by the data actually
// present). The query targets the database's main collection: albums for
// catalogues, inventory for transactions, items for graphs, the drop bucket
// for the discount store.
func (b *Built) Query(database string, size int) (string, error) {
	if size <= 0 {
		return "", fmt.Errorf("workload: query size must be positive, got %d", size)
	}
	if size > b.Spec.Albums() {
		size = b.Spec.Albums()
	}
	s, err := b.Poly.Database(database)
	if err != nil {
		return "", err
	}
	switch s.Kind() {
	case core.KindRelational:
		return fmt.Sprintf("SELECT * FROM inventory WHERE seq < %d", size), nil
	case core.KindDocument:
		return fmt.Sprintf(`albums.find({"seq": {"$lt": %d}})`, size), nil
	case core.KindGraph:
		return fmt.Sprintf("MATCH (n:items) WHERE n.seq < %d RETURN n", size), nil
	case core.KindKeyValue:
		// The discount store has no range predicate: enumerate the first
		// `size` existing discount keys with one MGET.
		var keys []string
		for _, k := range b.discountKeys {
			if k == "" {
				continue
			}
			keys = append(keys, k)
			if len(keys) == size {
				break
			}
		}
		if len(keys) == 0 {
			return "", fmt.Errorf("workload: no discount keys generated")
		}
		return "MGET drop " + strings.Join(keys, " "), nil
	default:
		return "", fmt.Errorf("workload: unknown store kind %v", s.Kind())
	}
}

// QueryTargets returns the databases the test bed queries target: one per
// base store kind, as in the paper ("for each of the four databases").
func (b *Built) QueryTargets() []string {
	return []string{"catalogue", "transactions", "similar-items", "discount"}
}
