package workload

import (
	"context"
	"testing"

	"quepa/internal/augment"
	"quepa/internal/core"
)

var ctx = context.Background()

func tinySpec() Spec {
	s := DefaultSpec()
	s.Artists = 10
	s.AlbumsPerArtist = 3
	s.Customers = 20
	return s
}

func TestBuildBasePolystore(t *testing.T) {
	b, err := Build(tinySpec(), Colocated())
	if err != nil {
		t.Fatal(err)
	}
	dbs := b.Databases()
	if len(dbs) != 4 {
		t.Fatalf("databases = %v", dbs)
	}
	if b.Poly.Size() != 4 {
		t.Errorf("polystore size = %d", b.Poly.Size())
	}
	// All four kinds present.
	kinds := map[core.StoreKind]bool{}
	for _, name := range dbs {
		s, err := b.Poly.Database(name)
		if err != nil {
			t.Fatal(err)
		}
		kinds[s.Kind()] = true
	}
	if len(kinds) != 4 {
		t.Errorf("store kinds = %v", kinds)
	}
	if b.Index.NodeCount() == 0 || b.Index.EdgeCount() == 0 {
		t.Error("index empty")
	}
	if err := b.Index.Validate(); err != nil {
		t.Errorf("index invalid: %v", err)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(Spec{}, Colocated()); err == nil {
		t.Error("zero spec should fail")
	}
}

func TestReplication(t *testing.T) {
	spec := tinySpec()
	spec.ReplicaRounds = 2
	b, err := Build(spec, Colocated())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(b.Databases()); got != 10 {
		t.Fatalf("databases with 2 replica rounds = %d, want 10", got)
	}
	if spec.Databases() != 10 {
		t.Errorf("Spec.Databases() = %d", spec.Databases())
	}
	// Only one discount store.
	count := 0
	for _, name := range b.Databases() {
		s, _ := b.Poly.Database(name)
		if s.Kind() == core.KindKeyValue {
			count++
		}
	}
	if count != 1 {
		t.Errorf("key-value stores = %d, want 1 (Redis stays single)", count)
	}
	// Replicas are reachable from the base objects through the index.
	hits := b.Index.Reach(core.NewGlobalKey("catalogue", "albums", "d0"), 0)
	replicaSeen := false
	for _, h := range hits {
		if h.Key.Database == "catalogue-2" || h.Key.Database == "catalogue-3" {
			replicaSeen = true
		}
	}
	if !replicaSeen {
		t.Error("replica objects not reachable from base album")
	}
}

func TestQueriesReturnExactSizes(t *testing.T) {
	b, err := Build(tinySpec(), Colocated())
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range []string{"catalogue", "transactions", "similar-items"} {
		for _, size := range []int{1, 5, 20} {
			q, err := b.Query(db, size)
			if err != nil {
				t.Fatalf("Query(%s, %d): %v", db, size, err)
			}
			objs, err := b.Poly.Query(ctx, db, q)
			if err != nil {
				t.Fatalf("running %q on %s: %v", q, db, err)
			}
			if len(objs) != size {
				t.Errorf("%s size %d: got %d objects", db, size, len(objs))
			}
		}
	}
	// Discount store: sizes bounded by generated discount keys.
	q, err := b.Query("discount", 5)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := b.Poly.Query(ctx, "discount", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 5 {
		t.Errorf("discount query returned %d objects", len(objs))
	}
}

func TestQueryErrors(t *testing.T) {
	b, err := Build(tinySpec(), Colocated())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Query("catalogue", 0); err == nil {
		t.Error("zero size should fail")
	}
	if _, err := b.Query("ghost", 5); err == nil {
		t.Error("unknown database should fail")
	}
	// Oversized queries cap at the data size.
	q, err := b.Query("catalogue", 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	objs, err := b.Poly.Query(ctx, "catalogue", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != tinySpec().Albums() {
		t.Errorf("capped query returned %d objects", len(objs))
	}
}

func TestDeterministicBuilds(t *testing.T) {
	b1, err := Build(tinySpec(), Colocated())
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Build(tinySpec(), Colocated())
	if err != nil {
		t.Fatal(err)
	}
	if b1.Index.EdgeCount() != b2.Index.EdgeCount() || b1.Index.NodeCount() != b2.Index.NodeCount() {
		t.Errorf("non-deterministic index: %d/%d vs %d/%d edges/nodes",
			b1.Index.EdgeCount(), b1.Index.NodeCount(), b2.Index.EdgeCount(), b2.Index.NodeCount())
	}
	o1, err := b1.Poly.Fetch(ctx, core.NewGlobalKey("catalogue", "albums", "d3"))
	if err != nil {
		t.Fatal(err)
	}
	o2, err := b2.Poly.Fetch(ctx, core.NewGlobalKey("catalogue", "albums", "d3"))
	if err != nil {
		t.Fatal(err)
	}
	if !o1.Equal(o2) {
		t.Errorf("non-deterministic data: %v vs %v", o1, o2)
	}
}

func TestAugmentationOverWorkload(t *testing.T) {
	spec := tinySpec()
	spec.ReplicaRounds = 1
	b, err := Build(spec, Colocated())
	if err != nil {
		t.Fatal(err)
	}
	aug := augment.New(b.Poly, b.Index, augment.Config{Strategy: augment.OuterBatch, BatchSize: 16, ThreadsSize: 4})
	q, err := b.Query("transactions", 10)
	if err != nil {
		t.Fatal(err)
	}
	answer, err := aug.Search(ctx, "transactions", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer.Original) != 10 {
		t.Fatalf("original = %d", len(answer.Original))
	}
	// Every inventory row has at least a catalogue identity, and replicas
	// multiply the augmentation.
	if len(answer.Augmented) < 10 {
		t.Errorf("augmented = %d, want >= original size", len(answer.Augmented))
	}
	// Augmentation grows with polystore size for the same query.
	base, err := Build(tinySpec(), Colocated())
	if err != nil {
		t.Fatal(err)
	}
	augBase := augment.New(base.Poly, base.Index, augment.Config{Strategy: augment.Sequential})
	answerBase, err := augBase.Search(ctx, "transactions", q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(answer.Augmented) <= len(answerBase.Augmented) {
		t.Errorf("replicated polystore augmentation (%d) not larger than base (%d)",
			len(answer.Augmented), len(answerBase.Augmented))
	}
}

func TestScale(t *testing.T) {
	s := DefaultSpec().Scale(0.1)
	if s.Artists != 12 || s.Customers != 20 {
		t.Errorf("scaled spec = %+v", s)
	}
	tiny := DefaultSpec().Scale(0.0001)
	if tiny.Artists < 1 {
		t.Error("scale floor violated")
	}
}

func TestQueryTargets(t *testing.T) {
	b, err := Build(tinySpec(), Colocated())
	if err != nil {
		t.Fatal(err)
	}
	for _, db := range b.QueryTargets() {
		if _, err := b.Poly.Database(db); err != nil {
			t.Errorf("query target %s not registered", db)
		}
	}
}

func TestRelationsRecorded(t *testing.T) {
	b, err := Build(tinySpec(), Colocated())
	if err != nil {
		t.Fatal(err)
	}
	rels := b.Relations()
	if len(rels) == 0 {
		t.Fatal("no relations recorded")
	}
	// Every asserted relation must be valid and present in the index.
	for _, r := range rels {
		if err := r.Validate(); err != nil {
			t.Fatalf("recorded relation invalid: %v", err)
		}
		if _, ok := b.Index.Relation(r.From, r.To); !ok {
			t.Fatalf("recorded relation %v missing from index", r)
		}
	}
	// The materialized index holds at least as many edges as assertions.
	if b.Index.EdgeCount() < len(rels) {
		t.Errorf("index %d edges < %d assertions", b.Index.EdgeCount(), len(rels))
	}
	// The returned slice is a copy.
	rels[0].Prob = -1
	if r := b.Relations()[0]; r.Prob == -1 {
		t.Error("Relations returned inner slice")
	}
}
