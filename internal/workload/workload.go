// Package workload builds the Polyphony polystore of the paper's empirical
// evaluation (Section VII-A): a catalogue document store, a transactions
// relational database, a shared discounts key-value store and a
// similar-items graph, populated with deterministic synthetic music data
// standing in for the Last.fm/MusicBrainz datasets, plus the A' index
// linking them.
//
// Like the paper, the polystore can be grown by replication: every
// replication round clones the catalogue, transactions and similar-items
// databases (Redis stays single), registering each replica as a completely
// different database and extending the A' index accordingly. The paper's
// polystore variants with 4, 7, 10 and 13 databases correspond to 0–3
// replication rounds.
//
// Every generated object carries a "seq" field so that queries with an
// exact result cardinality can be formed on any store (the paper's test bed
// uses queries retrieving 100–10,000 objects).
package workload

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/netsim"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/graphstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
)

// Spec sizes the generated data. The zero value is unusable; start from
// DefaultSpec and adjust (or Scale).
type Spec struct {
	Seed             int64
	Artists          int     // number of artists
	AlbumsPerArtist  int     // albums per artist
	Customers        int     // customer profiles (synthetic, as in the paper)
	SalesPerAlbum    int     // sales rows per album
	DiscountFraction float64 // share of albums with a discount entry
	SimilarPerItem   int     // SIMILAR edges per graph node
	ReplicaRounds    int     // each round adds 3 databases (all but Redis)
}

// DefaultSpec is a laptop-scale instance preserving the paper's ratios
// (MySQL largest, then MongoDB, Neo4j, Redis smallest).
func DefaultSpec() Spec {
	return Spec{
		Seed:             1,
		Artists:          120,
		AlbumsPerArtist:  5,
		Customers:        200,
		SalesPerAlbum:    2,
		DiscountFraction: 0.5,
		SimilarPerItem:   2,
		ReplicaRounds:    0,
	}
}

// Scale multiplies the entity counts by f (minimum 1 each).
func (s Spec) Scale(f float64) Spec {
	mul := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	s.Artists = mul(s.Artists)
	s.Customers = mul(s.Customers)
	return s
}

// Albums returns the number of generated albums.
func (s Spec) Albums() int { return s.Artists * s.AlbumsPerArtist }

// Databases returns the database count of the polystore: the 4 base stores
// plus 3 per replication round.
func (s Spec) Databases() int { return 4 + 3*s.ReplicaRounds }

// Built is a generated polystore with its A' index and metadata.
type Built struct {
	Spec  Spec
	Poly  *core.Polystore
	Index *aindex.Index
	// databases in registration order (base stores first, then replicas).
	databases []string
	// discountKeys maps album index -> discount key ("" when none).
	discountKeys []string
	// relations records the p-relations asserted into the index, in
	// insertion order (the ablation experiment replays them).
	relations []core.PRelation
}

// insertRel asserts a p-relation into the index and records it.
func (b *Built) insertRel(r core.PRelation) error {
	if err := b.Index.Insert(r); err != nil {
		return err
	}
	b.relations = append(b.relations, r)
	return nil
}

// Relations returns the p-relations asserted during generation, in order
// (the materialized closure in Index is larger).
func (b *Built) Relations() []core.PRelation {
	out := make([]core.PRelation, len(b.relations))
	copy(out, b.relations)
	return out
}

// Databases lists the database names in registration order.
func (b *Built) Databases() []string {
	out := make([]string, len(b.databases))
	copy(out, b.databases)
	return out
}

// Deployment selects the netsim profile stores are wrapped with.
type Deployment struct {
	Profile netsim.Profile
	// Sleep overrides the sleeper (nil = time.Sleep). Tests inject a
	// recorder; benchmarks use real sleeps.
	Sleep func(time.Duration)
}

// Centralized and Distributed are the two deployments of Section VII-A.
func Centralized() Deployment { return Deployment{Profile: netsim.Centralized} }

// Distributed places every store in a different "region".
func Distributed() Deployment { return Deployment{Profile: netsim.Distributed} }

// Colocated has no simulated network cost (unit tests).
func Colocated() Deployment { return Deployment{Profile: netsim.Colocated} }

// wordsA/wordsB drive deterministic name synthesis.
var (
	wordsA = []string{"Black", "Silent", "Electric", "Golden", "Crimson", "Velvet", "Broken", "Midnight", "Neon", "Pale", "Wild", "Hollow", "Lunar", "Static", "Frozen"}
	wordsB = []string{"Parade", "Mirror", "Garden", "Echo", "Horizon", "Harvest", "Signal", "Voyage", "Window", "Empire", "Winter", "Motel", "Lantern", "Arcade", "Meadow"}
	genres = []string{"rock", "pop", "jazz", "electronic", "folk", "metal", "ambient"}
)

// Build generates the polystore described by the spec, wraps every store
// with the deployment's network profile and loads the A' index.
func Build(spec Spec, deploy Deployment) (*Built, error) {
	if spec.Artists <= 0 || spec.AlbumsPerArtist <= 0 {
		return nil, fmt.Errorf("workload: spec must have positive artists and albums per artist")
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := &Built{Spec: spec, Poly: core.NewPolystore(), Index: aindex.New()}

	// Replica group 0 is the base polystore; further groups are replicas.
	for group := 0; group <= spec.ReplicaRounds; group++ {
		if err := b.buildGroup(spec, group, rng, deploy); err != nil {
			return nil, err
		}
	}
	// Freeze the reachability snapshot over the finished index so the first
	// queries (and the benchmarks) read lock-free instead of waiting out the
	// debounced rebuild the generation inserts scheduled.
	b.Index.RefreshSnapshot()
	return b, nil
}

// groupName suffixes replica databases ("catalogue", "catalogue-2", ...).
func groupName(base string, group int) string {
	if group == 0 {
		return base
	}
	return fmt.Sprintf("%s-%d", base, group+1)
}

func (b *Built) buildGroup(spec Spec, group int, rng *rand.Rand, deploy Deployment) error {
	albums := spec.Albums()
	catalogueName := groupName("catalogue", group)
	transactionsName := groupName("transactions", group)
	similarName := groupName("similar-items", group)

	doc := docstore.New(catalogueName)
	rel := relstore.New(transactionsName)
	graph := graphstore.New(similarName)

	for _, sql := range []string{
		`CREATE TABLE inventory (id TEXT PRIMARY KEY, seq INT, artist TEXT, name TEXT, genre TEXT, price FLOAT)`,
		`CREATE TABLE sales (id TEXT PRIMARY KEY, seq INT, customer TEXT, item TEXT, total FLOAT)`,
		`CREATE TABLE customers (id TEXT PRIMARY KEY, seq INT, name TEXT, city TEXT)`,
	} {
		if _, err := rel.Exec(sql); err != nil {
			return err
		}
	}

	var kv *kvstore.Store
	if group == 0 {
		kv = kvstore.New("discount")
	}

	type albumMeta struct {
		artist, title string
		year          int
		discounted    bool
	}
	metas := make([]albumMeta, albums)
	for i := 0; i < albums; i++ {
		artistIdx := i / spec.AlbumsPerArtist
		artist := fmt.Sprintf("%s %s", wordsA[artistIdx%len(wordsA)], wordsB[(artistIdx/len(wordsA))%len(wordsB)])
		if artistIdx >= len(wordsA)*len(wordsB) {
			artist = fmt.Sprintf("%s %d", artist, artistIdx)
		}
		title := fmt.Sprintf("%s %s", wordsA[rng.Intn(len(wordsA))], wordsB[rng.Intn(len(wordsB))])
		metas[i] = albumMeta{
			artist:     artist,
			title:      title,
			year:       1970 + rng.Intn(55),
			discounted: group == 0 && rng.Float64() < spec.DiscountFraction,
		}
	}

	// Catalogue documents.
	for i, m := range metas {
		docJSON := fmt.Sprintf(`{"_id": "d%d", "seq": %d, "title": %q, "artist": %q, "artist_id": "ar%d", "year": %d, "genre": %q}`,
			i, i, m.title, m.artist, i/spec.AlbumsPerArtist, m.year, genres[i%len(genres)])
		if _, err := doc.Insert("albums", docJSON); err != nil {
			return err
		}
	}

	// Inventory rows (batched inserts keep setup fast).
	var sb strings.Builder
	flushInsert := func(table string) error {
		if sb.Len() == 0 {
			return nil
		}
		if _, err := rel.Exec(fmt.Sprintf("INSERT INTO %s VALUES %s", table, sb.String())); err != nil {
			return err
		}
		sb.Reset()
		return nil
	}
	for i, m := range metas {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		price := 8 + rng.Float64()*20
		fmt.Fprintf(&sb, "('a%d', %d, '%s', '%s', '%s', %.2f)",
			i, i, sqlEscape(m.artist), sqlEscape(m.title), genres[i%len(genres)], price)
		if (i+1)%500 == 0 {
			if err := flushInsert("inventory"); err != nil {
				return err
			}
		}
	}
	if err := flushInsert("inventory"); err != nil {
		return err
	}

	// Customers.
	for c := 0; c < spec.Customers; c++ {
		if sb.Len() > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "('c%d', %d, 'Customer %d', 'City %d')", c, c, c, c%37)
		if (c+1)%500 == 0 {
			if err := flushInsert("customers"); err != nil {
				return err
			}
		}
	}
	if err := flushInsert("customers"); err != nil {
		return err
	}

	// Sales: SalesPerAlbum rows per album, customer round-robin.
	saleID := 0
	for i := range metas {
		for s := 0; s < spec.SalesPerAlbum; s++ {
			if sb.Len() > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "('s%d', %d, 'c%d', 'a%d', %.2f)",
				saleID, saleID, saleID%maxInt(spec.Customers, 1), i, 5+rng.Float64()*40)
			saleID++
			if saleID%500 == 0 {
				if err := flushInsert("sales"); err != nil {
					return err
				}
			}
		}
	}
	if err := flushInsert("sales"); err != nil {
		return err
	}

	// Graph nodes and similarity edges.
	for i, m := range metas {
		if err := graph.AddNode(fmt.Sprintf("n%d", i), "items", map[string]string{
			"seq":   fmt.Sprintf("%d", i),
			"title": m.title,
			"genre": genres[i%len(genres)],
		}); err != nil {
			return err
		}
	}
	for i := range metas {
		for e := 0; e < spec.SimilarPerItem; e++ {
			j := rng.Intn(albums)
			if j == i {
				continue
			}
			weight := fmt.Sprintf("%.2f", 0.1+rng.Float64()*0.9)
			if err := graph.AddEdge(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", j), "SIMILAR",
				map[string]string{"weight": weight}); err != nil {
				return err
			}
		}
	}

	// Discounts (base group only; Redis is shared and single).
	if kv != nil {
		for i, m := range metas {
			if m.discounted {
				key := fmt.Sprintf("k%d:%s", i, strings.ToLower(strings.ReplaceAll(m.title, " ", ":")))
				kv.Set("drop", key, fmt.Sprintf("%d%%", 5+rng.Intn(60)))
				b.discountKeys = append(b.discountKeys, key)
			} else {
				b.discountKeys = append(b.discountKeys, "")
			}
		}
	}

	// Register stores, wrapped with the deployment profile.
	wrap := func(s core.Store) core.Store {
		if deploy.Profile == (netsim.Profile{}) && deploy.Sleep == nil {
			return s
		}
		return netsim.Wrap(s, deploy.Profile, deploy.Sleep)
	}
	stores := []core.Store{
		connector.NewDocument(doc),
		connector.NewRelational(rel),
		connector.NewGraph(graph),
	}
	if kv != nil {
		stores = append(stores, connector.NewKeyValue(kv))
	}
	for _, s := range stores {
		if err := b.Poly.Register(wrap(s)); err != nil {
			return err
		}
		b.databases = append(b.databases, s.Name())
	}

	// A' index: identities within each album's cross-store copies, plus
	// matchings from sales to inventory.
	for i := range metas {
		dGK := core.NewGlobalKey(catalogueName, "albums", fmt.Sprintf("d%d", i))
		aGK := core.NewGlobalKey(transactionsName, "inventory", fmt.Sprintf("a%d", i))
		nGK := core.NewGlobalKey(similarName, "items", fmt.Sprintf("n%d", i))
		if err := b.insertRel(core.NewIdentity(dGK, aGK, 0.90+0.09*rng.Float64())); err != nil {
			return err
		}
		if err := b.insertRel(core.NewIdentity(dGK, nGK, 0.90+0.09*rng.Float64())); err != nil {
			return err
		}
		if group == 0 && b.discountKeys[i] != "" {
			kGK := core.NewGlobalKey("discount", "drop", b.discountKeys[i])
			if err := b.insertRel(core.NewIdentity(dGK, kGK, 0.90+0.09*rng.Float64())); err != nil {
				return err
			}
		}
		if group > 0 {
			// Replicas are linked to the base catalogue object, so queries on
			// any database reach the replicas' identity class too, growing the
			// augmented answer with the polystore, as in the paper's setup.
			baseGK := core.NewGlobalKey("catalogue", "albums", fmt.Sprintf("d%d", i))
			if err := b.insertRel(core.NewIdentity(baseGK, dGK, 0.90+0.09*rng.Float64())); err != nil {
				return err
			}
		}
	}
	// Matching p-relations: each sale matches its inventory item.
	saleID = 0
	for i := range metas {
		for s := 0; s < spec.SalesPerAlbum; s++ {
			sGK := core.NewGlobalKey(transactionsName, "sales", fmt.Sprintf("s%d", saleID))
			aGK := core.NewGlobalKey(transactionsName, "inventory", fmt.Sprintf("a%d", i))
			if err := b.insertRel(core.NewMatching(sGK, aGK, 0.60+0.29*rng.Float64())); err != nil {
				return err
			}
			saleID++
		}
	}
	return nil
}

func sqlEscape(s string) string { return strings.ReplaceAll(s, "'", "''") }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
