package netsim

// Fault injection: the same philosophy as the latency model — the paper's
// distributed deployment is reproduced deterministically, so here partial
// failure is too. A Chaos store decorates any core.Store with a FaultPlan:
// a seeded random error rate, hard "down" windows (flap schedules) and stall
// windows, all keyed off the store's own request sequence number so a test
// run replays bit-for-bit regardless of scheduling. The chaos CI job drives
// the whole stack (wire client retries, circuit breakers, augmenter
// degradation) through these wrappers without a real network.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"quepa/internal/core"
)

// ErrInjected marks a fault manufactured by a Chaos store. Tests and the
// degradation layer match it with errors.Is.
var ErrInjected = errors.New("netsim: injected fault")

// Window brackets request sequence numbers [From, To) — 1-based, To
// exclusive — during which a fault applies. A zero To means "forever".
type Window struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

func (w Window) contains(n uint64) bool {
	return n >= w.From && (w.To == 0 || n < w.To)
}

// ParseWindows parses a flag-friendly window list: "from:to[,from:to...]",
// e.g. "1:50,200:250". An empty string is an empty schedule; "from:" leaves
// the window open-ended.
func ParseWindows(s string) ([]Window, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Window
	for _, part := range strings.Split(s, ",") {
		from, to, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("netsim: window %q must be from:to", part)
		}
		f, err := strconv.ParseUint(from, 10, 64)
		if err != nil || f == 0 {
			return nil, fmt.Errorf("netsim: window %q: from must be a positive request index", part)
		}
		w := Window{From: f}
		if to != "" {
			t, err := strconv.ParseUint(to, 10, 64)
			if err != nil || t <= f {
				return nil, fmt.Errorf("netsim: window %q: to must exceed from", part)
			}
			w.To = t
		}
		out = append(out, w)
	}
	return out, nil
}

// FaultPlan describes the failure behaviour of one store. The zero value
// injects nothing.
type FaultPlan struct {
	// Seed drives the error-rate draws; same seed, same faults.
	Seed uint64
	// ErrorRate is the probability that any one request fails.
	ErrorRate float64
	// Down lists request windows during which every request fails — a
	// deterministic flap schedule.
	Down []Window
	// StallIn lists request windows during which requests stall for Stall
	// before being served (slow-store mode; combine with client deadlines).
	StallIn []Window
	// Stall is the added latency inside StallIn windows.
	Stall time.Duration
}

// Active reports whether the plan injects anything at all.
func (p FaultPlan) Active() bool {
	return p.ErrorRate > 0 || len(p.Down) > 0 || (len(p.StallIn) > 0 && p.Stall > 0)
}

// String renders the plan compactly for logs.
func (p FaultPlan) String() string {
	return fmt.Sprintf("faults(seed=%d,rate=%g,down=%d,stall=%v×%d)",
		p.Seed, p.ErrorRate, len(p.Down), p.Stall, len(p.StallIn))
}

// gate charges requests against one FaultPlan: a seeded error draw, down
// windows, stall windows — keyed off an atomic request sequence so a run
// replays bit-for-bit. Chaos (per-store) and ChaosNode (per-cluster-peer)
// share it.
type gate struct {
	name     string
	plan     FaultPlan
	sleep    func(time.Duration)
	seq      atomic.Uint64
	injected atomic.Uint64
	stalled  atomic.Uint64
}

// admit charges one request: an injected error, a stall, or nothing.
func (g *gate) admit() error {
	n := g.seq.Add(1)
	for _, w := range g.plan.Down {
		if w.contains(n) {
			g.injected.Add(1)
			return fmt.Errorf("netsim: %s request %d in down window: %w", g.name, n, ErrInjected)
		}
	}
	if g.plan.ErrorRate > 0 && unit(g.plan.Seed, n) < g.plan.ErrorRate {
		g.injected.Add(1)
		return fmt.Errorf("netsim: %s request %d drawn to fail: %w", g.name, n, ErrInjected)
	}
	if g.plan.Stall > 0 {
		for _, w := range g.plan.StallIn {
			if w.contains(n) {
				g.stalled.Add(1)
				g.sleep(g.plan.Stall)
				break
			}
		}
	}
	return nil
}

// Chaos wraps a core.Store with a FaultPlan. It is safe for concurrent use;
// the request sequence number advances atomically (under concurrency the
// assignment of faults to callers follows arrival order, but the set of
// faulted sequence numbers is fixed by the plan).
type Chaos struct {
	inner core.Store
	g     gate
}

// NewChaos decorates a store with a fault plan. A nil sleep uses time.Sleep.
func NewChaos(inner core.Store, plan FaultPlan, sleep func(time.Duration)) *Chaos {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Chaos{inner: inner, g: gate{name: inner.Name(), plan: plan, sleep: sleep}}
}

// Name returns the wrapped store's name.
func (c *Chaos) Name() string { return c.inner.Name() }

// Kind returns the wrapped store's kind.
func (c *Chaos) Kind() core.StoreKind { return c.inner.Kind() }

// Collections lists the wrapped store's collections.
func (c *Chaos) Collections() []string { return c.inner.Collections() }

// Unwrap returns the underlying store.
func (c *Chaos) Unwrap() core.Store { return c.inner }

// Plan returns the fault plan the store charges requests against.
func (c *Chaos) Plan() FaultPlan { return c.g.plan }

// Requests returns how many data requests reached the chaos layer.
func (c *Chaos) Requests() uint64 { return c.g.seq.Load() }

// Injected returns how many requests were failed by the plan.
func (c *Chaos) Injected() uint64 { return c.g.injected.Load() }

// Stalled returns how many requests were delayed by the plan.
func (c *Chaos) Stalled() uint64 { return c.g.stalled.Load() }

// fault charges one request against the plan: an injected error, a stall,
// or nothing.
func (c *Chaos) fault() error { return c.g.admit() }

// Get retrieves one object unless the plan faults the request.
func (c *Chaos) Get(ctx context.Context, collection, key string) (core.Object, error) {
	if err := c.fault(); err != nil {
		return core.Object{}, err
	}
	return c.inner.Get(ctx, collection, key)
}

// GetBatch retrieves many objects unless the plan faults the request.
func (c *Chaos) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	if err := c.fault(); err != nil {
		return nil, err
	}
	return c.inner.GetBatch(ctx, collection, keys)
}

// Query executes a native query unless the plan faults the request.
func (c *Chaos) Query(ctx context.Context, query string) ([]core.Object, error) {
	if err := c.fault(); err != nil {
		return nil, err
	}
	return c.inner.Query(ctx, query)
}

// KeyField forwards to the wrapped store (metadata is not faulted: the
// validator resolves it at query-rewrite time, not on the data path).
func (c *Chaos) KeyField(ctx context.Context, collection string) (string, error) {
	type keyResolver interface {
		KeyField(context.Context, string) (string, error)
	}
	if kr, ok := c.inner.(keyResolver); ok {
		return kr.KeyField(ctx, collection)
	}
	return "", core.ErrUnsupportedQuery
}

// RoundTrips forwards the round-trip count when the wrapped store tracks it.
func (c *Chaos) RoundTrips() uint64 {
	if ctr, ok := c.inner.(core.Counter); ok {
		return ctr.RoundTrips()
	}
	return 0
}

// unit maps (seed, n) to a uniform float64 in [0, 1) via splitmix64 — the
// same stateless construction the resilience retrier uses for jitter, so
// fault draws replay from the seed alone.
func unit(seed, n uint64) float64 {
	x := seed + n*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}
