package netsim

// Multi-node topology: the cluster analogue of the per-store latency and
// fault wrappers. A ChaosNode decorates one cluster peer (a shard node
// serving database-routed reads, frontier expansions and index snapshots
// over the wire) with a per-peer network profile, a per-peer FaultPlan, and
// a service-capacity model — at most Capacity requests are serviced
// concurrently, each holding a service slot for Service per object served.
// The capacity gate
// is what makes node-count sweeps show real scaling: one peer saturates at
// Capacity/Service requests per second, N peers at N times that, exactly
// like real stores bounded by their own executor pools.

import (
	"context"
	"time"

	"quepa/internal/core"
	"quepa/internal/wire"
)

// PeerNode is the store surface a cluster peer serves: plain store metadata
// plus the three wire cluster capabilities.
type PeerNode interface {
	core.Store
	wire.DBStore
	wire.FrontierReacher
	wire.Snapshotter
}

// PeerProfile is the simulated cost model of one cluster peer.
type PeerProfile struct {
	// Profile charges the network leg: one round trip per request plus a
	// per-object transfer cost, slept concurrently like real TCP.
	Profile Profile
	// Capacity bounds the requests serviced at once (0 disables the gate).
	Capacity int
	// Service is how long a request holds its service slot.
	Service time.Duration
}

// ChaosNode wraps a PeerNode with a peer profile and fault plan. Faults and
// stalls charge the data ops (database-routed reads and frontier
// expansions); snapshot transfers pay network and service cost but are not
// faulted, so bootstrap tests stay deterministic under any retry schedule.
type ChaosNode struct {
	inner PeerNode
	prof  PeerProfile
	sleep func(time.Duration)
	g     gate
	sem   chan struct{}
}

// NewChaosNode decorates a cluster peer. A nil sleep uses time.Sleep.
func NewChaosNode(inner PeerNode, prof PeerProfile, plan FaultPlan, sleep func(time.Duration)) *ChaosNode {
	if sleep == nil {
		sleep = time.Sleep
	}
	n := &ChaosNode{
		inner: inner,
		prof:  prof,
		sleep: sleep,
		g:     gate{name: inner.Name(), plan: plan, sleep: sleep},
	}
	if prof.Capacity > 0 {
		n.sem = make(chan struct{}, prof.Capacity)
	}
	return n
}

// Name returns the wrapped peer's name.
func (n *ChaosNode) Name() string { return n.inner.Name() }

// Kind returns the wrapped peer's kind.
func (n *ChaosNode) Kind() core.StoreKind { return n.inner.Kind() }

// Collections lists the wrapped peer's collections.
func (n *ChaosNode) Collections() []string { return n.inner.Collections() }

// Unwrap returns the wrapped peer.
func (n *ChaosNode) Unwrap() PeerNode { return n.inner }

// Requests returns how many data requests reached the fault gate.
func (n *ChaosNode) Requests() uint64 { return n.g.seq.Load() }

// Injected returns how many requests the plan failed.
func (n *ChaosNode) Injected() uint64 { return n.g.injected.Load() }

// Stalled returns how many requests the plan delayed.
func (n *ChaosNode) Stalled() uint64 { return n.g.stalled.Load() }

// charge pays the simulated cost of one request: the network leg first
// (concurrent, like independent round trips), then a service slot under the
// capacity gate held for Service per object served (minimum one), so the
// total service work of a query is conserved however the cluster splits it
// — the property that makes node-count sweeps meaningful.
func (n *ChaosNode) charge(objects int) {
	d := n.prof.Profile.RoundTrip + time.Duration(objects)*n.prof.Profile.PerObject
	if d > 0 {
		n.sleep(d)
	}
	if n.sem != nil {
		n.sem <- struct{}{}
		if n.prof.Service > 0 {
			units := objects
			if units < 1 {
				units = 1
			}
			n.sleep(time.Duration(units) * n.prof.Service)
		}
		<-n.sem
	}
}

// Get forwards to the wrapped peer (shard nodes reject it; the wrapper does
// not hide that).
func (n *ChaosNode) Get(ctx context.Context, collection, key string) (core.Object, error) {
	return n.inner.Get(ctx, collection, key)
}

// GetBatch forwards to the wrapped peer.
func (n *ChaosNode) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	return n.inner.GetBatch(ctx, collection, keys)
}

// Query forwards to the wrapped peer.
func (n *ChaosNode) Query(ctx context.Context, query string) ([]core.Object, error) {
	return n.inner.Query(ctx, query)
}

// GetDB serves one database-routed read under fault, network and capacity
// charging.
func (n *ChaosNode) GetDB(ctx context.Context, database, collection, key string) (core.Object, error) {
	if err := n.g.admit(); err != nil {
		return core.Object{}, err
	}
	o, err := n.inner.GetDB(ctx, database, collection, key)
	objs := 0
	if err == nil {
		objs = 1
	}
	n.charge(objs)
	return o, err
}

// GetBatchDB serves one database-routed batch read under charging.
func (n *ChaosNode) GetBatchDB(ctx context.Context, database, collection string, keys []string) ([]core.Object, error) {
	if err := n.g.admit(); err != nil {
		return nil, err
	}
	out, err := n.inner.GetBatchDB(ctx, database, collection, keys)
	n.charge(len(out))
	return out, err
}

// ExpandFrontier serves one scatter leg under charging.
func (n *ChaosNode) ExpandFrontier(ctx context.Context, keys []string, probs []float64) ([]wire.RemoteHit, wire.ReachInfo, error) {
	if err := n.g.admit(); err != nil {
		return nil, wire.ReachInfo{}, err
	}
	hits, info, err := n.inner.ExpandFrontier(ctx, keys, probs)
	n.charge(len(hits))
	return hits, info, err
}

// IndexSnapshot serves one snapshot transfer: charged, never faulted.
func (n *ChaosNode) IndexSnapshot(ctx context.Context) ([]byte, uint64, error) {
	data, epoch, err := n.inner.IndexSnapshot(ctx)
	n.charge(1)
	return data, epoch, err
}
