package netsim

import (
	"context"
	"sync"
	"testing"
	"time"

	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/stores/kvstore"
)

var _ core.Store = (*Store)(nil)

// recorder collects the sleeps the wrapper requested instead of sleeping.
type recorder struct {
	mu     sync.Mutex
	sleeps []time.Duration
}

func (r *recorder) sleep(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sleeps = append(r.sleeps, d)
}

func (r *recorder) total() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t time.Duration
	for _, d := range r.sleeps {
		t += d
	}
	return t
}

func newWrapped(profile Profile) (*Store, *recorder) {
	db := kvstore.New("discount")
	db.Set("drop", "k1", "40%")
	db.Set("drop", "k2", "10%")
	db.Set("drop", "k3", "25%")
	rec := &recorder{}
	return Wrap(connector.NewKeyValue(db), profile, rec.sleep), rec
}

func TestChargesPerCall(t *testing.T) {
	profile := Profile{RoundTrip: time.Millisecond, PerObject: time.Microsecond}
	s, rec := newWrapped(profile)
	ctx := context.Background()

	if _, err := s.Get(ctx, "drop", "k1"); err != nil {
		t.Fatal(err)
	}
	want := time.Millisecond + time.Microsecond
	if got := rec.total(); got != want {
		t.Errorf("Get charge = %v, want %v", got, want)
	}

	rec.sleeps = nil
	if _, err := s.GetBatch(ctx, "drop", []string{"k1", "k2", "k3"}); err != nil {
		t.Fatal(err)
	}
	want = time.Millisecond + 3*time.Microsecond
	if got := rec.total(); got != want {
		t.Errorf("GetBatch charge = %v, want %v (one RTT + 3 transfers)", got, want)
	}

	rec.sleeps = nil
	if _, err := s.Query(ctx, "SCAN drop"); err != nil {
		t.Fatal(err)
	}
	if got := rec.total(); got != want {
		t.Errorf("Query charge = %v, want %v", got, want)
	}
}

func TestBatchingSavesRoundTrips(t *testing.T) {
	// The central claim the simulation must preserve: k Gets cost k round
	// trips, one GetBatch of k keys costs one.
	profile := Profile{RoundTrip: time.Millisecond}
	ctx := context.Background()

	seq, seqRec := newWrapped(profile)
	for _, k := range []string{"k1", "k2", "k3"} {
		seq.Get(ctx, "drop", k)
	}
	batch, batchRec := newWrapped(profile)
	batch.GetBatch(ctx, "drop", []string{"k1", "k2", "k3"})

	if seqRec.total() != 3*batchRec.total() {
		t.Errorf("sequential %v vs batch %v: want 3x", seqRec.total(), batchRec.total())
	}
	if seq.RoundTrips() != 3 || batch.RoundTrips() != 1 {
		t.Errorf("round trips: seq=%d batch=%d", seq.RoundTrips(), batch.RoundTrips())
	}
}

func TestColocatedChargesNothing(t *testing.T) {
	s, rec := newWrapped(Colocated)
	s.Get(context.Background(), "drop", "k1")
	if len(rec.sleeps) != 0 {
		t.Errorf("colocated profile slept: %v", rec.sleeps)
	}
	if s.RoundTrips() != 1 {
		t.Errorf("round trips still counted: %d", s.RoundTrips())
	}
}

func TestMissDoesNotChargeTransfer(t *testing.T) {
	profile := Profile{RoundTrip: time.Millisecond, PerObject: time.Second}
	s, rec := newWrapped(profile)
	s.Get(context.Background(), "drop", "missing")
	if got := rec.total(); got != time.Millisecond {
		t.Errorf("miss charge = %v, want bare round trip", got)
	}
}

func TestSimulatedNetworkTime(t *testing.T) {
	profile := Profile{RoundTrip: time.Millisecond}
	s, _ := newWrapped(profile)
	ctx := context.Background()
	s.Get(ctx, "drop", "k1")
	s.Get(ctx, "drop", "k2")
	if got := s.SimulatedNetworkTime(); got != 2*time.Millisecond {
		t.Errorf("SimulatedNetworkTime = %v", got)
	}
}

func TestForwardingAndUnwrap(t *testing.T) {
	s, _ := newWrapped(Colocated)
	if s.Name() != "discount" || s.Kind() != core.KindKeyValue {
		t.Error("identity not forwarded")
	}
	if len(s.Collections()) != 1 {
		t.Error("collections not forwarded")
	}
	if s.Unwrap() == nil {
		t.Error("Unwrap returned nil")
	}
	// kv connector has no KeyField; wrapper reports unsupported.
	if _, err := s.KeyField(context.Background(), "drop"); err == nil {
		t.Error("KeyField on kv should be unsupported")
	}
}

func TestRealSleepDefault(t *testing.T) {
	db := kvstore.New("kv")
	db.Set("b", "k", "v")
	s := Wrap(connector.NewKeyValue(db), Profile{RoundTrip: time.Millisecond}, nil)
	start := time.Now()
	s.Get(context.Background(), "b", "k")
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("default sleep did not sleep: %v", elapsed)
	}
}
