// Package netsim simulates the network cost of reaching a polystore store.
//
// The paper evaluates QUEPA in two deployments: a centralized one (all stores
// co-located with QUEPA on one machine) and a distributed one (each store in
// a different EC2 region, with round-trip latencies up to a few hundred
// milliseconds). Re-running on real multi-region hardware is not possible
// here, so the deployment is reproduced by wrapping every store with a
// deterministic latency model charged per round trip plus a per-object
// transfer cost. This preserves exactly the arithmetic that drives the
// paper's batching results: a batch of k objects costs one round trip plus k
// transfer units instead of k round trips.
//
// Latencies are scaled down (~100x) from the paper's wide-area numbers so
// that full experiment sweeps run in seconds; the relative shapes are
// unchanged because every strategy is charged by the same model.
package netsim

import (
	"context"
	"sync/atomic"
	"time"

	"quepa/internal/core"
)

// Profile is the network cost model between QUEPA and one store.
type Profile struct {
	// RoundTrip is charged once per request.
	RoundTrip time.Duration
	// PerObject is charged once per object returned (transfer cost).
	PerObject time.Duration
}

// Deployment presets. Colocated has no simulated cost (in-process testing),
// Centralized models a same-datacenter deployment, Distributed a multi-region
// one (the paper's t2.medium machines "each placed in a different region").
var (
	Colocated   = Profile{}
	Centralized = Profile{RoundTrip: time.Millisecond, PerObject: 2 * time.Microsecond}
	Distributed = Profile{RoundTrip: 3 * time.Millisecond, PerObject: 2 * time.Microsecond}
)

// Store wraps a core.Store, charging the profile's cost on every call.
// It is safe for concurrent use; concurrent requests sleep independently,
// exactly as independent TCP round trips would.
type Store struct {
	inner      core.Store
	profile    Profile
	sleep      func(time.Duration)
	roundTrips atomic.Uint64
	simulated  atomic.Int64 // total simulated network time, ns
}

// Wrap decorates a store with a network profile. A nil sleep function uses
// time.Sleep; tests inject a recorder instead.
func Wrap(inner core.Store, profile Profile, sleep func(time.Duration)) *Store {
	if sleep == nil {
		sleep = time.Sleep
	}
	return &Store{inner: inner, profile: profile, sleep: sleep}
}

// Name returns the wrapped store's name.
func (s *Store) Name() string { return s.inner.Name() }

// Kind returns the wrapped store's kind.
func (s *Store) Kind() core.StoreKind { return s.inner.Kind() }

// Collections lists the wrapped store's collections (metadata access is not
// charged: it happens once at setup, not during query answering).
func (s *Store) Collections() []string { return s.inner.Collections() }

// RoundTrips returns the number of charged requests.
func (s *Store) RoundTrips() uint64 { return s.roundTrips.Load() }

// SimulatedNetworkTime returns the total simulated network time charged.
func (s *Store) SimulatedNetworkTime() time.Duration {
	return time.Duration(s.simulated.Load())
}

// Unwrap returns the underlying store.
func (s *Store) Unwrap() core.Store { return s.inner }

func (s *Store) charge(objects int) {
	s.roundTrips.Add(1)
	d := s.profile.RoundTrip + time.Duration(objects)*s.profile.PerObject
	if d > 0 {
		s.simulated.Add(int64(d))
		s.sleep(d)
	}
}

// Get retrieves one object, charging one round trip.
func (s *Store) Get(ctx context.Context, collection, key string) (core.Object, error) {
	o, err := s.inner.Get(ctx, collection, key)
	n := 0
	if err == nil {
		n = 1
	}
	s.charge(n)
	return o, err
}

// GetBatch retrieves many objects, charging one round trip plus transfer.
func (s *Store) GetBatch(ctx context.Context, collection string, keys []string) ([]core.Object, error) {
	out, err := s.inner.GetBatch(ctx, collection, keys)
	s.charge(len(out))
	return out, err
}

// Query executes a native query, charging one round trip plus transfer.
func (s *Store) Query(ctx context.Context, query string) ([]core.Object, error) {
	out, err := s.inner.Query(ctx, query)
	s.charge(len(out))
	return out, err
}

// KeyField forwards to the wrapped store when it can resolve key fields,
// so that wrapping does not hide validator support.
func (s *Store) KeyField(ctx context.Context, collection string) (string, error) {
	type keyResolver interface {
		KeyField(context.Context, string) (string, error)
	}
	if kr, ok := s.inner.(keyResolver); ok {
		return kr.KeyField(ctx, collection)
	}
	return "", core.ErrUnsupportedQuery
}
