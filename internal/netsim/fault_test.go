package netsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"quepa/internal/connector"
	"quepa/internal/stores/kvstore"
)

func chaosFixture(plan FaultPlan, sleep func(time.Duration)) *Chaos {
	db := kvstore.New("remote")
	db.Set("c", "k1", "v1")
	db.Set("c", "k2", "v2")
	return NewChaos(connector.NewKeyValue(db), plan, sleep)
}

// TestFaultDownWindows: requests inside a down window fail with ErrInjected,
// requests outside flow untouched — a deterministic flap.
func TestFaultDownWindows(t *testing.T) {
	c := chaosFixture(FaultPlan{Down: []Window{{From: 2, To: 4}}}, func(time.Duration) {})
	ctx := context.Background()
	for i := 1; i <= 5; i++ {
		_, err := c.Get(ctx, "c", "k1")
		inWindow := i >= 2 && i < 4
		if inWindow && !errors.Is(err, ErrInjected) {
			t.Errorf("request %d: want injected fault, got %v", i, err)
		}
		if !inWindow && err != nil {
			t.Errorf("request %d: unexpected error %v", i, err)
		}
	}
	if c.Injected() != 2 || c.Requests() != 5 {
		t.Errorf("injected=%d requests=%d, want 2/5", c.Injected(), c.Requests())
	}
}

// TestFaultErrorRateDeterministic: the same seed draws the same faults; a
// different seed draws different ones; the empirical rate lands near the
// configured one.
func TestFaultErrorRateDeterministic(t *testing.T) {
	const n = 2000
	run := func(seed uint64) []bool {
		c := chaosFixture(FaultPlan{Seed: seed, ErrorRate: 0.3}, func(time.Duration) {})
		out := make([]bool, n)
		for i := range out {
			_, err := c.Get(context.Background(), "c", "k1")
			out[i] = errors.Is(err, ErrInjected)
		}
		return out
	}
	a, b := run(7), run(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: same seed diverged", i+1)
		}
		if a[i] {
			fails++
		}
	}
	if fails < n*20/100 || fails > n*40/100 {
		t.Errorf("empirical rate %d/%d far from 0.3", fails, n)
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 drew identical fault patterns")
	}
}

// TestFaultStallWindows: requests in stall windows are delayed through the
// injected sleeper; others are not.
func TestFaultStallWindows(t *testing.T) {
	var slept []time.Duration
	c := chaosFixture(FaultPlan{Stall: 50 * time.Millisecond, StallIn: []Window{{From: 2, To: 3}}},
		func(d time.Duration) { slept = append(slept, d) })
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := c.Get(ctx, "c", "k1"); err != nil {
			t.Fatal(err)
		}
	}
	if len(slept) != 1 || slept[0] != 50*time.Millisecond || c.Stalled() != 1 {
		t.Errorf("slept=%v stalled=%d, want one 50ms stall", slept, c.Stalled())
	}
}

// TestFaultPlanParseWindows covers the flag syntax, including open-ended
// windows and rejects.
func TestFaultPlanParseWindows(t *testing.T) {
	ws, err := ParseWindows("1:50, 200:250")
	if err != nil || len(ws) != 2 || ws[0] != (Window{From: 1, To: 50}) || ws[1] != (Window{From: 200, To: 250}) {
		t.Fatalf("ParseWindows = %v, %v", ws, err)
	}
	ws, err = ParseWindows("10:")
	if err != nil || len(ws) != 1 || !ws[0].contains(1 << 40) || ws[0].contains(9) {
		t.Fatalf("open-ended window = %v, %v", ws, err)
	}
	if ws, err := ParseWindows(""); err != nil || ws != nil {
		t.Errorf("empty schedule = %v, %v", ws, err)
	}
	for _, bad := range []string{"x", "0:5", "5:5", "5:4", "a:b", "3"} {
		if _, err := ParseWindows(bad); err == nil {
			t.Errorf("ParseWindows(%q) accepted", bad)
		}
	}
}

// TestFaultInactivePlanIsTransparent: a zero plan never perturbs calls and
// metadata always bypasses the fault layer.
func TestFaultInactivePlanIsTransparent(t *testing.T) {
	c := chaosFixture(FaultPlan{}, func(time.Duration) { t.Error("slept with inactive plan") })
	if c.Plan().Active() {
		t.Error("zero plan reports active")
	}
	if !(FaultPlan{ErrorRate: 0.1}).Active() || !(FaultPlan{Down: []Window{{From: 1}}}).Active() {
		t.Error("active plans report inactive")
	}
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := c.Get(ctx, "c", "k1"); err != nil {
			t.Fatal(err)
		}
	}
	if c.Name() != "remote" || len(c.Collections()) == 0 {
		t.Error("metadata not forwarded")
	}
	down := chaosFixture(FaultPlan{Down: []Window{{From: 1}}}, nil)
	if c.Injected() != 0 {
		t.Error("inactive plan injected faults")
	}
	if _, err := down.Query(ctx, "SCAN c"); !errors.Is(err, ErrInjected) {
		t.Errorf("down store served a query: %v", err)
	}
	if _, err := down.GetBatch(ctx, "c", []string{"k1"}); !errors.Is(err, ErrInjected) {
		t.Errorf("down store served a batch: %v", err)
	}
}
