// Command distributed runs a polystore whose stores live behind real TCP
// servers (the wire protocol), the shape of the paper's distributed
// deployment. It then shows why batching matters there: the same augmented
// search is executed with the SEQUENTIAL and the BATCH augmenter, and the
// round trips actually issued to each remote store are reported.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/netsim"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
	"quepa/internal/wire"
)

func main() {
	ctx := context.Background()

	// --- Build the engines and expose each over its own TCP server. ---
	rel := relstore.New("transactions")
	mustExec(rel, `CREATE TABLE inventory (id TEXT PRIMARY KEY, seq INT, artist TEXT, name TEXT)`)
	for i := 0; i < 40; i++ {
		mustExec(rel, fmt.Sprintf(`INSERT INTO inventory VALUES ('a%d', %d, 'Artist %d', 'Album %d')`, i, i, i/4, i))
	}
	doc := docstore.New("catalogue")
	for i := 0; i < 40; i++ {
		if _, err := doc.Insert("albums", fmt.Sprintf(`{"_id": "d%d", "title": "Album %d"}`, i, i)); err != nil {
			log.Fatal(err)
		}
	}
	kv := kvstore.New("discount")
	for i := 0; i < 40; i += 2 {
		kv.Set("drop", fmt.Sprintf("k%d", i), fmt.Sprintf("%d%%", 10+i))
	}

	var servers []*wire.Server
	serve := func(s core.Store) string {
		srv, err := wire.Serve(s, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		servers = append(servers, srv)
		fmt.Printf("serving %-12s (%s) on %s\n", s.Name(), s.Kind(), srv.Addr())
		return srv.Addr()
	}
	addrRel := serve(connector.NewRelational(rel))
	addrDoc := serve(connector.NewDocument(doc))
	addrKV := serve(connector.NewKeyValue(kv))
	defer func() {
		for _, s := range servers {
			s.Close()
		}
	}()

	// --- QUEPA's side: dial the remote stores and add the cross-region
	// latency of the paper's distributed deployment on top. ---
	poly := core.NewPolystore()
	var clients []*wire.Client
	var wrapped []*netsim.Store
	for _, addr := range []string{addrRel, addrDoc, addrKV} {
		cli, err := wire.Dial(addr)
		if err != nil {
			log.Fatal(err)
		}
		clients = append(clients, cli)
		w := netsim.Wrap(cli, netsim.Distributed, nil)
		wrapped = append(wrapped, w)
		if err := poly.Register(w); err != nil {
			log.Fatal(err)
		}
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// --- The A' index: album i is the same entity in all three stores. ---
	index := aindex.New()
	for i := 0; i < 40; i++ {
		d := core.NewGlobalKey("catalogue", "albums", fmt.Sprintf("d%d", i))
		a := core.NewGlobalKey("transactions", "inventory", fmt.Sprintf("a%d", i))
		must(index.Insert(core.NewIdentity(d, a, 0.95)))
		if i%2 == 0 {
			k := core.NewGlobalKey("discount", "drop", fmt.Sprintf("k%d", i))
			must(index.Insert(core.NewIdentity(d, k, 0.85)))
		}
	}

	// --- The same augmented search, sequential vs batched. ---
	query := `SELECT * FROM inventory WHERE seq < 30`
	run := func(cfg augment.Config) {
		before := make([]uint64, len(wrapped))
		for i, w := range wrapped {
			before[i] = w.RoundTrips()
		}
		aug := augment.New(poly, index, cfg)
		start := time.Now()
		answer, err := aug.Search(ctx, "transactions", query, 0)
		if err != nil {
			log.Fatal(err)
		}
		var trips uint64
		for i, w := range wrapped {
			trips += w.RoundTrips() - before[i]
		}
		fmt.Printf("%-22s %3d results + %3d augmented, %4d round trips, %v\n",
			cfg.Strategy.String()+":", len(answer.Original), len(answer.Augmented), trips, time.Since(start).Round(time.Millisecond))
	}
	fmt.Println()
	run(augment.Config{Strategy: augment.Sequential})
	run(augment.Config{Strategy: augment.Batch, BatchSize: 100})
	run(augment.Config{Strategy: augment.OuterBatch, BatchSize: 100, ThreadsSize: 4})
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustExec(db *relstore.Store, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}
