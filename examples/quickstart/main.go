// Command quickstart reproduces the paper's running example end to end: the
// Polyphony polystore of Fig. 1 (a relational transactions database, a
// document catalogue, a key-value discounts store and a similar-items
// graph), the A' index of Fig. 3, and Lucy's augmented search from the
// introduction — an SQL query over the sales department's database whose
// answer is enriched with the catalogue document and the 40% discount
// stored in systems she cannot even query.
package main

import (
	"context"
	"fmt"
	"log"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/graphstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
)

func main() {
	ctx := context.Background()

	// --- The four departments' databases (paper Fig. 1). Each speaks its
	// own language; none knows about the others. ---

	// Sales: relational, ACID transactions.
	transactions := relstore.New("transactions")
	mustExec(transactions, `CREATE TABLE inventory (id TEXT PRIMARY KEY, artist TEXT, name TEXT, price FLOAT)`)
	mustExec(transactions, `INSERT INTO inventory VALUES
		('a32', 'Cure', 'Wish', 18.50),
		('a33', 'Cure', 'Disintegration', 17.00),
		('a34', 'Radiohead', 'OK Computer', 21.00)`)
	mustExec(transactions, `CREATE TABLE sales (id TEXT PRIMARY KEY, customer TEXT, item TEXT, total FLOAT)`)
	mustExec(transactions, `INSERT INTO sales VALUES ('s8', 'John Doe', 'a32', 20.0)`)

	// Warehouse: JSON documents.
	catalogue := docstore.New("catalogue")
	mustInsertDoc(catalogue, "albums", `{"_id": "d1", "title": "Wish", "artist": "The Cure", "artist_id": "a1", "year": 1992}`)
	mustInsertDoc(catalogue, "albums", `{"_id": "d2", "title": "Disintegration", "artist": "The Cure", "artist_id": "a1", "year": 1989}`)

	// Shared discounts: key-value.
	discount := kvstore.New("discount")
	discount.Set("drop", "k1:cure:wish", "40%")

	// Marketing: similar-items graph.
	similar := graphstore.New("similar-items")
	must(similar.AddNode("n1", "items", map[string]string{"title": "Wish"}))
	must(similar.AddNode("n2", "items", map[string]string{"title": "Disintegration"}))
	must(similar.AddEdge("n1", "n2", "SIMILAR", map[string]string{"weight": "0.9"}))

	// --- The polystore: a loose registry, no global schema. ---
	poly := core.NewPolystore()
	must(poly.Register(connector.NewRelational(transactions)))
	must(poly.Register(connector.NewDocument(catalogue)))
	must(poly.Register(connector.NewKeyValue(discount)))
	must(poly.Register(connector.NewGraph(similar)))

	// --- The A' index: the p-relations of Fig. 3. Inserting the identities
	// materializes the consistency closure automatically (Fig. 4). ---
	index := aindex.New()
	gk := core.MustParseGlobalKey
	must(index.Insert(core.NewIdentity(gk("catalogue.albums.d1"), gk("transactions.inventory.a32"), 0.9)))
	must(index.Insert(core.NewIdentity(gk("catalogue.albums.d1"), gk("discount.drop.k1:cure:wish"), 0.8)))
	must(index.Insert(core.NewIdentity(gk("similar-items.items.n1"), gk("transactions.inventory.a32"), 0.85)))
	must(index.Insert(core.NewMatching(gk("transactions.sales.s8"), gk("transactions.inventory.a32"), 0.7)))
	fmt.Printf("A' index: %d global keys, %d p-relations (including materialized ones)\n\n",
		index.NodeCount(), index.EdgeCount())

	// --- Lucy's augmented search: plain SQL, augmented answer. ---
	aug := augment.New(poly, index, augment.Config{Strategy: augment.OuterBatch, BatchSize: 16, ThreadsSize: 4, CacheSize: 100})

	query := `SELECT * FROM inventory WHERE name LIKE '%wish%'`
	fmt.Printf("Lucy submits to the sales database, in augmented mode:\n    %s\n\n", query)
	answer, err := aug.Search(ctx, "transactions", query, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Local answer:")
	for _, o := range answer.Original {
		fmt.Printf("    %s\n", o)
	}
	fmt.Println("\nAugmentation (probability-ordered, from databases Lucy cannot query):")
	for _, ao := range answer.Augmented {
		fmt.Printf("    p=%.2f  %s\n", ao.Prob, ao.Object)
	}

	// --- Level 1 reaches one hop further (Definition 3). ---
	answer1, err := aug.Search(ctx, "transactions", query, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAt level 1 the same query reaches %d related objects (level 0: %d).\n",
		len(answer1.Augmented), len(answer.Augmented))

	// --- Aggregates cannot be augmented: the validator says why. ---
	if _, err := aug.Search(ctx, "transactions", `SELECT COUNT(*) FROM inventory`, 0); err != nil {
		fmt.Printf("\nValidator on COUNT(*): %v\n", err)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

func mustExec(db *relstore.Store, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}

func mustInsertDoc(db *docstore.Store, collection, doc string) {
	if _, err := db.Insert(collection, doc); err != nil {
		log.Fatal(err)
	}
}
