// Command adaptive demonstrates the adaptive optimizer of Section V: QUEPA
// logs completed augmentation runs, trains the four models (T1, the C4.5
// tree choosing the augmenter; T2–T4, the regression trees choosing
// BATCH_SIZE, THREADS_SIZE and CACHE_SIZE), and then predicts a
// configuration for unseen queries. The example prints the learned T1 tree
// in the if/else form of the paper's Fig. 8.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"quepa/internal/augment"
	"quepa/internal/optimizer"
	"quepa/internal/workload"
)

func main() {
	// Two polystore variants (4 and 7 databases).
	var variants []*workload.Built
	for _, rounds := range []int{0, 1} {
		spec := workload.DefaultSpec()
		spec.Artists = 30
		spec.AlbumsPerArtist = 3
		spec.ReplicaRounds = rounds
		built, err := workload.Build(spec, workload.Centralized())
		if err != nil {
			log.Fatal(err)
		}
		variants = append(variants, built)
	}

	// Phase 1 — logs collection: run a grid of configurations over training
	// queries, recording features and times.
	adaptive := optimizer.NewAdaptive()
	grid := []augment.Config{
		{Strategy: augment.Sequential},
		{Strategy: augment.Batch, BatchSize: 100},
		{Strategy: augment.Outer, ThreadsSize: 8},
		{Strategy: augment.OuterBatch, BatchSize: 100, ThreadsSize: 8},
	}
	runs := 0
	for _, built := range variants {
		for _, size := range []int{5, 20, 60} {
			query, err := built.Query("transactions", size)
			if err != nil {
				log.Fatal(err)
			}
			for _, cfg := range grid {
				aug := augment.New(built.Poly, built.Index, cfg)
				start := time.Now()
				answer, err := aug.Search(context.Background(), "transactions", query, 0)
				if err != nil {
					log.Fatal(err)
				}
				adaptive.Log(optimizer.RunLog{
					Features: optimizer.QueryFeatures{
						ResultSize:    len(answer.Original),
						AugmentedSize: len(answer.Augmented),
						NumStores:     built.Spec.Databases(),
					},
					Config:   cfg,
					Duration: time.Since(start),
				})
				runs++
			}
		}
	}
	fmt.Printf("Phase 1: logged %d augmentation runs\n", runs)

	// Phase 2 — training.
	if err := adaptive.Train(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Phase 2: models trained. T1 (augmenter choice, cf. paper Fig. 8):")
	fmt.Println(indent(adaptive.TreeStrings()["T1"]))

	// Phase 3 — prediction on unseen queries.
	fmt.Println("Phase 3: predictions for unseen queries:")
	for _, f := range []optimizer.QueryFeatures{
		{ResultSize: 8, AugmentedSize: 30, NumStores: 4},
		{ResultSize: 50, AugmentedSize: 500, NumStores: 7},
		{ResultSize: 80, AugmentedSize: 1200, NumStores: 7, Level: 1},
	} {
		cfg := adaptive.Choose(f, 0)
		fmt.Printf("    result=%-4d augmented=%-5d stores=%-2d -> %v\n",
			f.ResultSize, f.AugmentedSize, f.NumStores, cfg)
	}

	// The HUMAN and RANDOM baselines of Fig. 12, for comparison.
	human := optimizer.Human{}
	random := optimizer.NewRandom(42)
	f := optimizer.QueryFeatures{ResultSize: 50, AugmentedSize: 500, NumStores: 7}
	fmt.Printf("\nSame query, other optimizers:\n    HUMAN  -> %v\n    RANDOM -> %v\n",
		human.Choose(f, 0), random.Choose(f, 0))
}

func indent(s string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		b.WriteString("    ")
		b.WriteString(line)
		b.WriteByte('\n')
	}
	return b.String()
}
