// Command linkage demonstrates the Collector (Section III-D): building an
// A' index from scratch by record linkage over the raw contents of a
// polystore. Objects are scanned from every store, blocked by shared tokens
// (the BLAST substitute), pairwise-matched by a weighted comparator ensemble
// (the Duke substitute), thresholded into identity and matching p-relations,
// and loaded into a fresh index — which is then immediately usable for
// augmented search.
package main

import (
	"context"
	"fmt"
	"log"

	"quepa/internal/augment"
	"quepa/internal/collector"
	"quepa/internal/connector"
	"quepa/internal/core"
	"quepa/internal/middleware"
	"quepa/internal/stores/docstore"
	"quepa/internal/stores/kvstore"
	"quepa/internal/stores/relstore"
)

func main() {
	ctx := context.Background()

	// Three stores holding overlapping album data under different schemas.
	rel := relstore.New("transactions")
	mustExec(rel, `CREATE TABLE inventory (id TEXT PRIMARY KEY, artist TEXT, name TEXT, price FLOAT)`)
	mustExec(rel, `INSERT INTO inventory VALUES
		('a32', 'The Cure', 'Wish', 18.50),
		('a33', 'The Cure', 'Disintegration', 17.00),
		('a34', 'Radiohead', 'OK Computer', 21.00),
		('a35', 'Portishead', 'Dummy', 15.50)`)

	doc := docstore.New("catalogue")
	for _, d := range []string{
		`{"_id": "d1", "title": "Wish", "artist": "The Cure", "year": 1992}`,
		`{"_id": "d2", "title": "Disintegration", "artist": "The Cure", "year": 1989}`,
		`{"_id": "d3", "title": "OK Computer", "artist": "Radiohead", "year": 1997}`,
		`{"_id": "d4", "title": "Dummy", "artist": "Portishead", "year": 1994}`,
	} {
		if _, err := doc.Insert("albums", d); err != nil {
			log.Fatal(err)
		}
	}

	kv := kvstore.New("discount")
	kv.Set("drop", "k1:cure:wish", "The Cure Wish 40%")
	kv.Set("drop", "k2:portishead:dummy", "Portishead Dummy 15%")

	poly := core.NewPolystore()
	for _, s := range []core.Store{
		connector.NewRelational(rel),
		connector.NewDocument(doc),
		connector.NewKeyValue(kv),
	} {
		if err := poly.Register(s); err != nil {
			log.Fatal(err)
		}
	}

	// Scan every object of the polystore (this is an offline build step).
	var objects []core.Object
	for _, name := range poly.Databases() {
		s, err := poly.Database(name)
		if err != nil {
			log.Fatal(err)
		}
		objs, err := middleware.ScanAll(ctx, s)
		if err != nil {
			log.Fatal(err)
		}
		objects = append(objects, objs...)
	}
	fmt.Printf("scanned %d data objects from %d databases\n", len(objects), poly.Size())

	// Run the linkage pipeline with thresholds loosened for this tiny,
	// schema-heterogeneous demo (the paper uses 0.9/0.6 at scale).
	cfg := collector.DefaultConfig()
	cfg.IdentityThreshold = 0.55
	cfg.MatchingThreshold = 0.30
	coll, err := collector.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Tune the comparator weights on a few labeled pairs (the genetic-
	// algorithm substitute).
	find := func(gk string) core.Object {
		o, err := poly.Fetch(ctx, core.MustParseGlobalKey(gk))
		if err != nil {
			log.Fatal(err)
		}
		return o
	}
	pairs := []collector.LabeledPair{
		{A: find("transactions.inventory.a32"), B: find("catalogue.albums.d1"), Match: true},
		{A: find("transactions.inventory.a34"), B: find("catalogue.albums.d3"), Match: true},
		{A: find("transactions.inventory.a32"), B: find("catalogue.albums.d3"), Match: false},
		{A: find("transactions.inventory.a35"), B: find("catalogue.albums.d2"), Match: false},
	}
	tuned, err := coll.Tune(pairs, cfg.IdentityThreshold, 300, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned comparator weights %v (F1 = %.2f on the labeled pairs)\n", round(tuned.Weights), tuned.F1)

	index, rels, err := coll.BuildIndex(ctx, objects)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndiscovered %d p-relations:\n", len(rels))
	for _, r := range rels {
		fmt.Printf("    %v\n", r)
	}

	// The freshly built index immediately powers augmented search.
	aug := augment.New(poly, index, augment.Config{Strategy: augment.Sequential})
	answer, err := aug.Search(ctx, "transactions", `SELECT * FROM inventory WHERE name LIKE '%wish%'`, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naugmented search over the collector-built index (%d results + %d augmented):\n",
		len(answer.Original), len(answer.Augmented))
	for _, ao := range answer.Augmented {
		fmt.Printf("    p=%.2f  %s\n", ao.Prob, ao.Object)
	}
}

func mustExec(db *relstore.Store, sql string) {
	if _, err := db.Exec(sql); err != nil {
		log.Fatal(err)
	}
}

func round(ws []float64) []float64 {
	out := make([]float64, len(ws))
	for i, w := range ws {
		out[i] = float64(int(w*100)) / 100
	}
	return out
}
