// Command exploration demonstrates augmented exploration (Definition 4 and
// Example 5 of the paper): a click-through session over the Polyphony
// polystore in which a user starts from a local SQL query and walks the
// p-relation links across the stores, one level-0 augmentation at a time.
// The traversed path is recorded in the D_P repository; once the same path
// is walked often enough, it is promoted to a matching shortcut in the A'
// index (Section III-D(a), Fig. 5).
package main

import (
	"context"
	"fmt"
	"log"

	"quepa/internal/aindex"
	"quepa/internal/augment"
	"quepa/internal/core"
	"quepa/internal/workload"
)

func main() {
	ctx := context.Background()

	// A small generated Polyphony polystore (same shape as the paper's
	// evaluation workload).
	spec := workload.DefaultSpec()
	spec.Artists = 20
	spec.AlbumsPerArtist = 3
	built, err := workload.Build(spec, workload.Colocated())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Polystore: %d databases, A' index with %d keys / %d p-relations\n\n",
		built.Poly.Size(), built.Index.NodeCount(), built.Index.EdgeCount())

	aug := augment.New(built.Poly, built.Index, augment.Config{Strategy: augment.Inner, ThreadsSize: 2, CacheSize: 256})
	// Promote paths of length >= 2 after just two traversals, so the demo
	// shows a promotion.
	tracker := aindex.NewPathTracker(built.Index, aindex.PromotionPolicy{BaseThreshold: 2, Decay: 0, MinThreshold: 2})

	// Walk the same exploration twice: sale -> inventory item -> catalogue
	// album. The second walk triggers the promotion.
	var first, last core.GlobalKey
	for walk := 1; walk <= 2; walk++ {
		fmt.Printf("--- Exploration session %d ---\n", walk)
		sess, start, err := aug.Explore(ctx, "transactions", `SELECT * FROM sales WHERE seq < 1`, tracker)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("local query returned %d object(s); clicking %v\n", len(start), start[0].GK)

		links, err := sess.Step(ctx, start[0].GK)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step 1: %d links:\n", len(links))
		for i, l := range links {
			if i == 3 {
				fmt.Println("        ...")
				break
			}
			fmt.Printf("        p=%.2f -> %v\n", l.Prob, l.Object.GK)
		}

		// Click the most probable link, then the most probable link that
		// leads outside the current database.
		links2, err := sess.Step(ctx, links[0].Object.GK)
		if err != nil {
			log.Fatal(err)
		}
		next := links2[0]
		for _, l := range links2 {
			if l.Object.GK.Database != links[0].Object.GK.Database {
				next = l
				break
			}
		}
		fmt.Printf("step 2: following p=%.2f -> %v\n", next.Prob, next.Object.GK)
		if _, err := sess.Step(ctx, next.Object.GK); err != nil {
			log.Fatal(err)
		}

		path := sess.Path()
		first, last = path[0], path[len(path)-1]
		promoted := sess.Finish()
		fmt.Printf("path: %v\npromoted: %v\n\n", path, promoted)
	}

	if r, ok := built.Index.Relation(first, last); ok {
		fmt.Printf("The popular path became a shortcut in the A' index:\n    %v\n", r)
	} else {
		fmt.Println("no shortcut was created (the two walks diverged)")
	}
}
