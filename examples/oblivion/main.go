// Command oblivion demonstrates the lineage system the paper names as
// future work in Section III-C(b): "In order to cover those use cases that
// require data oblivion, we will embed a lineage system that allows
// cascading deletions of inferred p-relations."
//
// The default A' index deletes lazily and keeps inferred p-relations when
// their source disappears — great for availability, wrong for oblivion: if
// the relation "this discount is for that album" must be forgotten, the
// materialized consequences of that assertion must go too. The
// LineageIndex tracks which asserted p-relations every edge derives from
// and rebuilds the closure from the surviving assertions on demand.
package main

import (
	"fmt"
	"log"

	"quepa/internal/aindex"
	"quepa/internal/core"
)

func main() {
	gk := core.MustParseGlobalKey
	album := gk("catalogue.albums.d1")
	item := gk("transactions.inventory.a32")
	discount := gk("discount.drop.k1:cure:wish")
	sale := gk("transactions.sales.s8")

	li := aindex.NewLineageIndex()
	must(li.Insert(core.NewIdentity(album, item, 0.9)))
	must(li.Insert(core.NewIdentity(album, discount, 0.8)))
	must(li.Insert(core.NewMatching(sale, item, 0.7)))

	fmt.Println("Asserted p-relations:")
	for _, r := range li.Asserted() {
		fmt.Printf("    %v\n", r)
	}
	fmt.Printf("\nIndex after materialization: %d edges (closure included)\n", li.Index().EdgeCount())
	if r, ok := li.Index().Relation(item, discount); ok {
		fmt.Printf("    inferred: %v (via the album identities)\n", r)
	}
	if r, ok := li.Index().Relation(sale, discount); ok {
		fmt.Printf("    inferred: %v (matching propagated over identity)\n", r)
	}
	fmt.Printf("    the inferred item~discount edge derives from album~discount: %v\n",
		li.DerivedFrom(item, discount, album, discount))

	// The discount relation must be forgotten (say, a data-subject request
	// or a retracted linkage). Cascading deletion removes it AND everything
	// that only existed because of it.
	fmt.Println("\nForgetting album ~ discount with cascade...")
	ok, err := li.DeleteCascading(album, discount)
	must(err)
	if !ok {
		log.Fatal("assertion was not present")
	}

	fmt.Printf("Index after cascade: %d edges\n", li.Index().EdgeCount())
	report := func(a, b core.GlobalKey, label string) {
		if r, ok := li.Index().Relation(a, b); ok {
			fmt.Printf("    kept:   %v (%s)\n", r, label)
		} else {
			fmt.Printf("    purged: %v <-> %v (%s)\n", a, b, label)
		}
	}
	report(album, discount, "the forgotten assertion")
	report(item, discount, "was inferred via the forgotten assertion")
	report(sale, discount, "was propagated via the forgotten assertion")
	report(album, item, "independent assertion")
	report(sale, item, "independent assertion")
	report(sale, album, "re-derivable from the survivors")

	fmt.Println("\nCompare with the default lazy policy, which keeps inferred edges")
	fmt.Println("when their source vanishes (paper Section III-C(b)) — the right")
	fmt.Println("default for availability, the wrong one for oblivion.")
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
