// Package quepa is a from-scratch Go reproduction of QUEPA (Maccioni &
// Torlone, "Augmented Access for Querying and Exploring a Polystore", ICDE
// 2018): query augmentation over a polystore of heterogeneous embedded
// database engines, without middleware layers, global schemas or query
// translation.
//
// The implementation lives under internal/:
//
//   - core: the polystore data model (global keys, data objects, p-relations)
//   - stores/{relstore,docstore,kvstore,graphstore}: four embedded engines
//     standing in for MySQL, MongoDB, Redis and Neo4j, each with its own
//     query language
//   - connector, wire, netsim: uniform store access, a TCP wire protocol,
//     and the simulated centralized/distributed deployments
//   - aindex: the A' index of p-relations with consistency materialization,
//     lazy deletion and exploration-path promotion
//   - augment: the augmentation operator, augmented search and exploration,
//     and the six execution strategies (SEQUENTIAL, BATCH, INNER, OUTER,
//     OUTER-BATCH, OUTER-INNER)
//   - collector: record linkage (blocking + matching) building the A' index
//   - ml/{c45,reptree}, optimizer: the learned rule-based ADAPTIVE optimizer
//   - middleware: the Metamodel, Talend and ArangoDB baseline emulations
//   - workload, bench: the Polyphony dataset generator and the harness
//     regenerating every figure of the paper's evaluation
//
// The benchmarks in bench_test.go regenerate the paper's Figs. 9–13; see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results.
package quepa
