package quepa

// One benchmark per figure of the paper's evaluation (Section VII). Each
// benchmark regenerates the figure's series at full harness scale and
// prints the same rows the paper plots; run with
//
//	go test -bench=. -benchmem
//
// The absolute numbers reflect the embedded engines and the scaled-down
// network simulation; the comparison of shapes against the paper is
// recorded in EXPERIMENTS.md.

import (
	"os"
	"sync"
	"testing"

	"quepa/internal/bench"
)

var reportOnce sync.Map

func runFigure(b *testing.B, id string) {
	b.Helper()
	opts := bench.Options{Seed: 1}
	for i := 0; i < b.N; i++ {
		points, err := bench.Run(id, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, printed := reportOnce.LoadOrStore(id, true); !printed {
			bench.Report(os.Stdout, points)
		}
	}
}

// BenchmarkFig9a_9b regenerates Fig. 9(a,b): BATCH and OUTER-BATCH vs
// BATCH_SIZE, centralized, cold level 0 and warm level 1.
func BenchmarkFig9a_9b(b *testing.B) { runFigure(b, "9") }

// BenchmarkFig10a_10b regenerates Fig. 10(a,b): batching vs SEQUENTIAL in
// the distributed deployment, varying BATCH_SIZE.
func BenchmarkFig10a_10b(b *testing.B) { runFigure(b, "10ab") }

// BenchmarkFig10c_10d regenerates Fig. 10(c,d): batching scalability with
// the query size in the distributed deployment.
func BenchmarkFig10c_10d(b *testing.B) { runFigure(b, "10cd") }

// BenchmarkFig11a_11b regenerates Fig. 11(a,b): concurrent augmenters vs
// THREADS_SIZE.
func BenchmarkFig11a_11b(b *testing.B) { runFigure(b, "11ab") }

// BenchmarkFig11c_11d regenerates Fig. 11(c,d): all six augmenters vs query
// size.
func BenchmarkFig11c_11d(b *testing.B) { runFigure(b, "11cd") }

// BenchmarkFig11e_11f regenerates Fig. 11(e,f): all six augmenters vs the
// number of databases.
func BenchmarkFig11e_11f(b *testing.B) { runFigure(b, "11ef") }

// BenchmarkFig12 regenerates Fig. 12(a,b): ADAPTIVE vs HUMAN vs RANDOM win
// counts and ADAPTIVE's top-k placement.
func BenchmarkFig12(b *testing.B) { runFigure(b, "12") }

// BenchmarkFig13a_13b regenerates Fig. 13(a,b): QUEPA vs the middleware
// baselines over the query size, with OOM points.
func BenchmarkFig13a_13b(b *testing.B) { runFigure(b, "13ab") }

// BenchmarkFig13c_13d regenerates Fig. 13(c,d): QUEPA vs the middleware
// baselines over the number of databases, with OOM points.
func BenchmarkFig13c_13d(b *testing.B) { runFigure(b, "13cd") }

// BenchmarkExtraCache regenerates the memory-based study of Section
// VII-B(c), which the paper describes but does not plot: CACHE_SIZE effect
// in the centralized vs the distributed deployment.
func BenchmarkExtraCache(b *testing.B) { runFigure(b, "cache") }

// BenchmarkExtraAblation quantifies the consistency-materialization design
// choice of Section III-C: build cost and index size versus the related
// objects a level-0 augmentation reaches.
func BenchmarkExtraAblation(b *testing.B) { runFigure(b, "ablation") }
